#include "opt/revised_simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "util/timer.hpp"
#include "util/validation.hpp"

namespace privlocad::opt {

namespace {

/// Mirrors the dense solver's anti-cycling policy: Dantzig pricing until
/// this many consecutive degenerate pivots, then Bland's rule.
constexpr std::size_t kStallThreshold = 64;

}  // namespace

RevisedSimplex::RevisedSimplex(const SparseLpProblem& problem,
                               SimplexOptions options)
    : options_(options) {
  problem.validate();
  n_ = problem.objective.size();
  m_eq_ = problem.eq_lhs.rows();
  m_ub_ = problem.ub_lhs.rows();
  m_ = m_eq_ + m_ub_;
  objective_ = problem.objective;

  // rhs normalization mirrors opt::solve(): every row gets rhs >= 0 by
  // negation (decided on the raw rhs), inequality rows carry the graded
  // degeneracy perturbation, and rows without a natural +1 basis column
  // (equalities and flipped inequalities) get an artificial.
  std::vector<double> row_sign(m_, 1.0);
  b_.assign(m_, 0.0);
  art_row_.clear();
  for (std::size_t r = 0; r < m_eq_; ++r) {
    if (problem.eq_rhs[r] < 0.0) row_sign[r] = -1.0;
    b_[r] = row_sign[r] * problem.eq_rhs[r];
    art_row_.push_back(static_cast<std::uint32_t>(r));
  }
  slack_sign_.assign(m_ub_, 1.0);
  for (std::size_t r = 0; r < m_ub_; ++r) {
    const std::size_t row = m_eq_ + r;
    if (problem.ub_rhs[r] < 0.0) {
      row_sign[row] = -1.0;
      art_row_.push_back(static_cast<std::uint32_t>(row));
    }
    slack_sign_[r] = row_sign[row];
    b_[row] = row_sign[row] *
              (problem.ub_rhs[r] + options_.degeneracy_perturbation *
                                       static_cast<double>(r + 1));
  }

  art_base_ = n_ + m_ub_;
  total_cols_ = art_base_ + art_row_.size();

  // Structural columns as CSC (sign-normalized), assembled with a count
  // pass then a fill pass over both CSR blocks.
  std::vector<std::size_t> count(n_, 0);
  for (std::size_t r = 0; r < m_eq_; ++r) {
    for (std::size_t nz = problem.eq_lhs.row_begin(r);
         nz < problem.eq_lhs.row_end(r); ++nz) {
      ++count[problem.eq_lhs.col_index(nz)];
    }
  }
  for (std::size_t r = 0; r < m_ub_; ++r) {
    for (std::size_t nz = problem.ub_lhs.row_begin(r);
         nz < problem.ub_lhs.row_end(r); ++nz) {
      ++count[problem.ub_lhs.col_index(nz)];
    }
  }
  col_start_.assign(n_ + 1, 0);
  for (std::size_t j = 0; j < n_; ++j) {
    col_start_[j + 1] = col_start_[j] + count[j];
  }
  col_row_.resize(col_start_[n_]);
  col_value_.resize(col_start_[n_]);
  std::vector<std::size_t> cursor(col_start_.begin(), col_start_.end() - 1);
  for (std::size_t r = 0; r < m_eq_; ++r) {
    for (std::size_t nz = problem.eq_lhs.row_begin(r);
         nz < problem.eq_lhs.row_end(r); ++nz) {
      const std::size_t j = problem.eq_lhs.col_index(nz);
      col_row_[cursor[j]] = static_cast<std::uint32_t>(r);
      col_value_[cursor[j]] = row_sign[r] * problem.eq_lhs.value(nz);
      ++cursor[j];
    }
  }
  for (std::size_t r = 0; r < m_ub_; ++r) {
    const std::size_t row = m_eq_ + r;
    for (std::size_t nz = problem.ub_lhs.row_begin(r);
         nz < problem.ub_lhs.row_end(r); ++nz) {
      const std::size_t j = problem.ub_lhs.col_index(nz);
      col_row_[cursor[j]] = static_cast<std::uint32_t>(row);
      col_value_[cursor[j]] = row_sign[row] * problem.ub_lhs.value(nz);
      ++cursor[j];
    }
  }

  // Slack and artificial columns are singletons; keep them in flat arrays
  // so column() can hand out uniform (rows, values, count) views.
  slack_row_.resize(m_ub_);
  for (std::size_t r = 0; r < m_ub_; ++r) {
    slack_row_[r] = static_cast<std::uint32_t>(m_eq_ + r);
  }
  art_value_.assign(art_row_.size(), 1.0);

  duals_.assign(m_, 0.0);
  scratch_w_.assign(m_, 0.0);
  cost_basic_.assign(m_, 0.0);
}

RevisedSimplex::ColumnRef RevisedSimplex::column(std::size_t j) const {
  if (j < n_) {
    const std::size_t begin = col_start_[j];
    return {col_row_.data() + begin, col_value_.data() + begin,
            col_start_[j + 1] - begin};
  }
  if (j < art_base_) {
    const std::size_t s = j - n_;
    return {slack_row_.data() + s, slack_sign_.data() + s, 1};
  }
  const std::size_t a = j - art_base_;
  return {art_row_.data() + a, art_value_.data() + a, 1};
}

void RevisedSimplex::compute_duals(const std::vector<double>& cost) {
  bool any = false;
  for (std::size_t i = 0; i < m_; ++i) {
    cost_basic_[i] = cost[basis_[i]];
    any = any || cost_basic_[i] != 0.0;
  }
  if (!any) {
    std::fill(duals_.begin(), duals_.end(), 0.0);
    return;
  }
  // y^T = c_B^T B^-1: each dual is the dot of c_B with one (contiguous,
  // column-major) column of the inverse.
  for (std::size_t r = 0; r < m_; ++r) {
    const double* col = binv_.data() + r * m_;
    double acc = 0.0;
    for (std::size_t i = 0; i < m_; ++i) acc += cost_basic_[i] * col[i];
    duals_[r] = acc;
  }
}

void RevisedSimplex::ftran(std::size_t j, std::vector<double>& w) const {
  std::fill(w.begin(), w.end(), 0.0);
  const ColumnRef a = column(j);
  // B^-1 A_j = sum over A_j's nonzero rows of the matching inverse
  // column, scaled -- O(m * nnz) instead of a dense m x n sweep.
  for (std::size_t nz = 0; nz < a.count; ++nz) {
    const double v = a.values[nz];
    if (v == 0.0) continue;
    const double* col = binv_.data() + a.rows[nz] * m_;
    for (std::size_t i = 0; i < m_; ++i) w[i] += v * col[i];
  }
}

void RevisedSimplex::apply_pivot(std::size_t leaving_row,
                                 std::size_t entering_col,
                                 const std::vector<double>& w) {
  const double wp = w[leaving_row];
  const double* wd = w.data();
  for (std::size_t c = 0; c < m_; ++c) {
    double* col = binv_.data() + c * m_;
    const double alpha = col[leaving_row] / wp;
    if (alpha == 0.0) continue;
    for (std::size_t i = 0; i < m_; ++i) col[i] -= wd[i] * alpha;
    col[leaving_row] = alpha;
  }
  const double t = x_basic_[leaving_row] / wp;
  if (t != 0.0) {
    for (std::size_t i = 0; i < m_; ++i) x_basic_[i] -= wd[i] * t;
  }
  x_basic_[leaving_row] = t;

  in_basis_[basis_[leaving_row]] = 0;
  basis_[leaving_row] = entering_col;
  in_basis_[entering_col] = 1;
}

LpStatus RevisedSimplex::run_phase(const std::vector<double>& cost,
                                   std::size_t entering_limit,
                                   std::size_t* iterations) {
  std::size_t degenerate_streak = 0;
  for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
    compute_duals(cost);

    // Entering column: reduced cost c_j - y A_j from the sparse column.
    const bool use_bland = degenerate_streak >= kStallThreshold;
    std::size_t entering = total_cols_;
    double most_negative = -options_.tolerance;
    for (std::size_t j = 0; j < entering_limit; ++j) {
      if (in_basis_[j]) continue;
      const ColumnRef a = column(j);
      double reduced = cost[j];
      for (std::size_t nz = 0; nz < a.count; ++nz) {
        reduced -= duals_[a.rows[nz]] * a.values[nz];
      }
      if (reduced < most_negative) {
        entering = j;
        if (use_bland) break;  // Bland: first eligible index
        most_negative = reduced;  // Dantzig: steepest
      }
    }
    if (entering == total_cols_) return LpStatus::kOptimal;

    ftran(entering, scratch_w_);

    // Leaving row: minimum ratio; ties by smallest basis index (exactly
    // the dense solver's rule, so pivot paths stay comparable).
    std::size_t leaving = m_;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < m_; ++r) {
      const double a = scratch_w_[r];
      if (a <= options_.tolerance) continue;
      const double ratio = x_basic_[r] / a;
      if (ratio < best_ratio - options_.tolerance ||
          (std::abs(ratio - best_ratio) <= options_.tolerance &&
           leaving < m_ && basis_[r] < basis_[leaving])) {
        best_ratio = ratio;
        leaving = r;
      }
    }
    if (leaving == m_) return LpStatus::kUnbounded;

    degenerate_streak =
        best_ratio <= options_.tolerance ? degenerate_streak + 1 : 0;
    ++*iterations;
    apply_pivot(leaving, entering, scratch_w_);
  }
  return LpStatus::kIterationLimit;
}

void RevisedSimplex::drive_out_artificials() {
  for (std::size_t r = 0; r < m_; ++r) {
    if (basis_[r] < art_base_) continue;
    for (std::size_t j = 0; j < art_base_; ++j) {
      if (in_basis_[j]) continue;
      // Row r of B^-1 A_j without the full ftran: O(nnz) strided reads.
      const ColumnRef a = column(j);
      double pivot_entry = 0.0;
      for (std::size_t nz = 0; nz < a.count; ++nz) {
        pivot_entry += a.values[nz] * binv_[a.rows[nz] * m_ + r];
      }
      if (std::abs(pivot_entry) <= options_.tolerance) continue;
      ftran(j, scratch_w_);
      if (std::abs(scratch_w_[r]) <= options_.tolerance) continue;
      apply_pivot(r, j, scratch_w_);
      ++drive_out_pivots_;
      break;
    }
  }
}

LpSolution RevisedSimplex::extract(
    const std::vector<double>& objective) const {
  LpSolution solution;
  solution.status = LpStatus::kOptimal;
  solution.x.assign(n_, 0.0);
  for (std::size_t r = 0; r < m_; ++r) {
    if (basis_[r] < n_) solution.x[basis_[r]] = x_basic_[r];
  }
  solution.objective = 0.0;
  for (std::size_t j = 0; j < n_; ++j) {
    solution.objective += objective[j] * solution.x[j];
  }
  return solution;
}

LpSolution RevisedSimplex::solve() {
  const util::Timer timer;
  SolveStats call_stats;
  drive_out_pivots_ = 0;
  const auto finish = [&](LpSolution solution) {
    call_stats.pivots = call_stats.phase1_iterations +
                        call_stats.phase2_iterations + drive_out_pivots_;
    solution.stats = call_stats;
    stats_.phase1_iterations += call_stats.phase1_iterations;
    stats_.phase2_iterations += call_stats.phase2_iterations;
    stats_.pivots += call_stats.pivots;
    detail::record_solve_metrics(call_stats, timer.elapsed_seconds());
    return solution;
  };

  // All-slack/artificial starting basis: B is the identity.
  phase1_done_ = false;
  binv_.assign(m_ * m_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) binv_[i * m_ + i] = 1.0;
  basis_.assign(m_, 0);
  in_basis_.assign(total_cols_, 0);
  x_basic_ = b_;
  {
    std::size_t next_art = 0;
    for (std::size_t r = 0; r < m_eq_; ++r) {
      basis_[r] = art_base_ + next_art++;
    }
    for (std::size_t r = 0; r < m_ub_; ++r) {
      const std::size_t row = m_eq_ + r;
      basis_[row] =
          slack_sign_[r] < 0.0 ? art_base_ + next_art++ : n_ + r;
    }
    for (std::size_t r = 0; r < m_; ++r) in_basis_[basis_[r]] = 1;
  }

  if (!art_row_.empty()) {
    std::vector<double> phase1_cost(total_cols_, 0.0);
    for (std::size_t j = art_base_; j < total_cols_; ++j) {
      phase1_cost[j] = 1.0;
    }
    const LpStatus phase1 =
        run_phase(phase1_cost, total_cols_, &call_stats.phase1_iterations);
    if (phase1 != LpStatus::kOptimal) {
      return finish({phase1 == LpStatus::kUnbounded ? LpStatus::kInfeasible
                                                    : phase1,
                     {},
                     0.0,
                     {}});
    }
    double artificial_mass = 0.0;
    for (std::size_t r = 0; r < m_; ++r) {
      if (basis_[r] >= art_base_) artificial_mass += x_basic_[r];
    }
    if (artificial_mass > 1e-6) {
      return finish({LpStatus::kInfeasible, {}, 0.0, {}});
    }
    drive_out_artificials();
  }
  phase1_done_ = true;

  std::vector<double> phase2_cost(total_cols_, 0.0);
  for (std::size_t j = 0; j < n_; ++j) phase2_cost[j] = objective_[j];
  const LpStatus phase2 =
      run_phase(phase2_cost, art_base_, &call_stats.phase2_iterations);
  if (phase2 != LpStatus::kOptimal) return finish({phase2, {}, 0.0, {}});
  return finish(extract(objective_));
}

LpSolution RevisedSimplex::resolve(const std::vector<double>& objective) {
  util::require(phase1_done_,
                "RevisedSimplex::resolve() needs a prior solve() whose "
                "phase 1 succeeded (the basis must be feasible)");
  util::require(objective.size() == n_,
                "resolve() objective has " +
                    std::to_string(objective.size()) +
                    " entries but the LP has " + std::to_string(n_) +
                    " variables");
  const util::Timer timer;
  SolveStats call_stats;
  drive_out_pivots_ = 0;
  objective_ = objective;

  // Constraints are unchanged, so the retained basis (and B^-1 and the
  // basic values) is still feasible: phase 2 restarts from it directly.
  std::vector<double> phase2_cost(total_cols_, 0.0);
  for (std::size_t j = 0; j < n_; ++j) phase2_cost[j] = objective_[j];
  const LpStatus phase2 =
      run_phase(phase2_cost, art_base_, &call_stats.phase2_iterations);

  LpSolution solution =
      phase2 == LpStatus::kOptimal ? extract(objective_) : LpSolution{};
  if (phase2 != LpStatus::kOptimal) solution.status = phase2;
  call_stats.pivots = call_stats.phase2_iterations;
  solution.stats = call_stats;
  stats_.phase2_iterations += call_stats.phase2_iterations;
  stats_.pivots += call_stats.pivots;
  detail::record_solve_metrics(call_stats, timer.elapsed_seconds());
  return solution;
}

LpSolution solve_sparse(const SparseLpProblem& problem,
                        const SimplexOptions& options, SolveStats* stats) {
  RevisedSimplex solver(problem, options);
  LpSolution solution = solver.solve();
  if (stats != nullptr) *stats = solution.stats;
  return solution;
}

}  // namespace privlocad::opt
