// Sparse (CSR) constraint storage for linear programs.
//
// The geo-IND mechanism LP has k^2 variables but only a handful of
// nonzeros per constraint row: a row-stochastic equality touches the k
// entries of one channel row, and a spanner-edge ratio constraint touches
// exactly two variables. Storing those rows densely (opt::Matrix) costs
// O(rows * k^2) memory and makes every simplex pivot a dense sweep, which
// is why the exact solver dies past tiny grids. CsrMatrix keeps only the
// nonzeros, so constraint storage is O(nnz) and the revised simplex
// (opt/revised_simplex.hpp) prices and ftrans in O(nnz per column).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace privlocad::opt {

class Matrix;  // simplex.hpp

/// Compressed-sparse-row matrix built row by row. Entries within a row
/// must be appended in strictly increasing column order (asserted in
/// debug builds, checked by SparseLpProblem::validate()).
class CsrMatrix {
 public:
  CsrMatrix() = default;
  explicit CsrMatrix(std::size_t cols) : cols_(cols) {}

  /// Appends one entry to the currently open row.
  void append(std::size_t col, double value) {
    assert(col < cols_);
    assert(open_row_entries_ == 0 ||
           col > static_cast<std::size_t>(col_.back()));
    col_.push_back(static_cast<std::uint32_t>(col));
    value_.push_back(value);
    ++open_row_entries_;
  }

  /// Closes the currently open row (possibly empty) and starts the next.
  void finish_row() {
    row_start_.push_back(col_.size());
    open_row_entries_ = 0;
  }

  std::size_t rows() const { return row_start_.size() - 1; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const { return col_.size(); }

  /// Half-open nonzero index range [row_begin(r), row_end(r)) of row r;
  /// index into col_index() / value().
  std::size_t row_begin(std::size_t r) const {
    assert(r < rows());
    return row_start_[r];
  }
  std::size_t row_end(std::size_t r) const {
    assert(r < rows());
    return row_start_[r + 1];
  }
  std::uint32_t col_index(std::size_t nz) const {
    assert(nz < col_.size());
    return col_[nz];
  }
  double value(std::size_t nz) const {
    assert(nz < value_.size());
    return value_[nz];
  }

  /// Dense -> CSR: keeps entries with |a_ij| > zero_tolerance.
  static CsrMatrix from_dense(const Matrix& dense,
                              double zero_tolerance = 0.0);

 private:
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_start_{0};
  std::vector<std::uint32_t> col_;
  std::vector<double> value_;
  std::size_t open_row_entries_ = 0;
};

/// The sparse counterpart of opt::LpProblem:
///   minimize c^T x  s.t.  A_eq x = b_eq,  A_ub x <= b_ub,  x >= 0.
struct SparseLpProblem {
  std::vector<double> objective;  ///< c, one entry per variable

  CsrMatrix eq_lhs;               ///< A_eq (may have 0 rows)
  std::vector<double> eq_rhs;     ///< b_eq

  CsrMatrix ub_lhs;               ///< A_ub (may have 0 rows)
  std::vector<double> ub_rhs;     ///< b_ub

  /// Validates dimensional consistency, finite coefficients, and
  /// in-range / strictly increasing column indices per row; throws
  /// util::InvalidArgument naming the offending block and sizes.
  void validate() const;
};

}  // namespace privlocad::opt
