#include "opt/sparse.hpp"

#include <cmath>
#include <string>

#include "opt/simplex.hpp"
#include "util/validation.hpp"

namespace privlocad::opt {

CsrMatrix CsrMatrix::from_dense(const Matrix& dense, double zero_tolerance) {
  CsrMatrix csr(dense.cols());
  for (std::size_t r = 0; r < dense.rows(); ++r) {
    for (std::size_t c = 0; c < dense.cols(); ++c) {
      const double v = dense.at(r, c);
      if (std::abs(v) > zero_tolerance) csr.append(c, v);
    }
    csr.finish_row();
  }
  return csr;
}

namespace {

void validate_block(const CsrMatrix& lhs, const std::vector<double>& rhs,
                    std::size_t variables, const char* name) {
  util::require(lhs.rows() == rhs.size(),
                std::string("A_") + name + " has " +
                    std::to_string(lhs.rows()) + " rows but b_" + name +
                    " has " + std::to_string(rhs.size()) + " entries");
  util::require(lhs.rows() == 0 || lhs.cols() == variables,
                std::string("A_") + name + " has " +
                    std::to_string(lhs.cols()) + " columns but the LP has " +
                    std::to_string(variables) + " variables");
  for (std::size_t r = 0; r < lhs.rows(); ++r) {
    std::uint32_t previous = 0;
    bool first = true;
    for (std::size_t nz = lhs.row_begin(r); nz < lhs.row_end(r); ++nz) {
      const std::uint32_t col = lhs.col_index(nz);
      util::require(col < lhs.cols(),
                    std::string("A_") + name + " row " + std::to_string(r) +
                        " references column " + std::to_string(col) +
                        " but the matrix has " + std::to_string(lhs.cols()) +
                        " columns");
      util::require(first || col > previous,
                    std::string("A_") + name + " row " + std::to_string(r) +
                        " columns are not strictly increasing at column " +
                        std::to_string(col));
      util::require(std::isfinite(lhs.value(nz)),
                    std::string("A_") + name + " row " + std::to_string(r) +
                        " has a non-finite coefficient");
      previous = col;
      first = false;
    }
  }
  for (std::size_t r = 0; r < rhs.size(); ++r) {
    util::require(std::isfinite(rhs[r]),
                  std::string("b_") + name + " entry " + std::to_string(r) +
                      " is non-finite");
  }
}

}  // namespace

void SparseLpProblem::validate() const {
  util::require(!objective.empty(), "LP needs at least one variable");
  validate_block(eq_lhs, eq_rhs, objective.size(), "eq");
  validate_block(ub_lhs, ub_rhs, objective.size(), "ub");
}

}  // namespace privlocad::opt
