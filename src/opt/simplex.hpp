// Dense two-phase simplex solver.
//
// Solves   minimize    c^T x
//          subject to  A_eq  x  = b_eq
//                      A_ub  x <= b_ub
//                      x >= 0
//
// Built for the optimal geo-IND mechanism (Bordenabe et al., CCS 2014):
// the mechanism is the solution of an LP whose variables are the entries
// of a stochastic matrix, with per-row simplex constraints (equalities)
// and geo-IND density-ratio constraints (inequalities). Problem sizes are
// small (hundreds of variables, thousands of constraints), so a dense
// tableau with Bland's anti-cycling rule is simple and fast enough; it is
// kept as the reference implementation that the sparse revised simplex
// (opt/revised_simplex.hpp) is checked against.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace privlocad::opt {

/// Row-major dense matrix, sized rows x cols at construction. Index
/// bounds are asserted in debug builds (NDEBUG off); release builds
/// elide the check to keep the pivot inner loop branch-free.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols);

  double& at(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_ && "opt::Matrix::at index out of range");
    return data_[r * cols_ + c];
  }
  double at(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_ && "opt::Matrix::at index out of range");
    return data_[r * cols_ + c];
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpProblem {
  std::vector<double> objective;  ///< c, one entry per variable

  Matrix eq_lhs;                  ///< A_eq (may have 0 rows)
  std::vector<double> eq_rhs;     ///< b_eq

  Matrix ub_lhs;                  ///< A_ub (may have 0 rows)
  std::vector<double> ub_rhs;     ///< b_ub

  /// Validates dimensional consistency; throws util::InvalidArgument with
  /// a message naming the offending block and the mismatched sizes.
  void validate() const;
};

/// Iteration accounting for one or more simplex solves; also published
/// to the global metrics registry as `opt.*` counters on every solve.
struct SolveStats {
  std::size_t phase1_iterations = 0;
  std::size_t phase2_iterations = 0;
  std::size_t pivots = 0;  ///< all basis changes, drive-out pivots included
};

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  std::vector<double> x;      ///< primal solution (valid when optimal)
  double objective = 0.0;     ///< c^T x (valid when optimal)
  SolveStats stats;           ///< iteration counts of this solve
};

struct SimplexOptions {
  std::size_t max_iterations = 50000;
  double tolerance = 1e-9;

  /// Anti-degeneracy rhs perturbation: inequality row r gets
  /// `perturbation * (r + 1)` added to its rhs. Massively degenerate
  /// problems (e.g. the geo-IND LP, whose ratio constraints all have
  /// rhs 0) stall the simplex at ties; a graded perturbation makes every
  /// vertex unique so Dantzig pricing runs freely.
  ///
  /// Error bound: by LP duality the optimal objective is b^T y* at the
  /// optimal duals y*, so shifting inequality rhs r by perturbation*(r+1)
  /// moves the optimum by at most
  ///     sum_r |y*_r| * perturbation * (r + 1)
  ///       <= perturbation * rows * sum_r |y*_r|,
  /// i.e. O(perturbation * rows) for bounded duals (the geo-IND duals are
  /// bounded by the prior-weighted cell distances). The property test
  /// SimplexTest.PerturbationObjectiveErrorIsLinearlyBounded pins this on
  /// known LPs for both solvers. Callers that need exact feasibility
  /// should post-process (the optimal mechanism renormalizes its rows).
  /// Zero disables.
  double degeneracy_perturbation = 0.0;
};

/// Solves the LP with the two-phase method.
LpSolution solve(const LpProblem& problem, const SimplexOptions& options = {});

namespace detail {
/// Publishes one solve's iteration counts and wall time as `opt.*`
/// metrics in the global registry (internal, shared by both solvers).
void record_solve_metrics(const SolveStats& stats, double seconds);
}  // namespace detail

}  // namespace privlocad::opt
