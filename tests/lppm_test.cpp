// Tests for the LPPM module: sigma calibration (Lemma 1 / Theorem 2),
// mechanism output statistics, and an empirical check of the geo-IND
// inequality itself on discretized densities.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>

#include "lppm/baselines.hpp"
#include "lppm/gaussian.hpp"
#include "lppm/planar_laplace.hpp"
#include "lppm/privacy_params.hpp"
#include "rng/samplers.hpp"
#include "util/validation.hpp"

namespace privlocad::lppm {
namespace {

BoundedGeoIndParams paper_params(std::size_t n = 10, double eps = 1.0) {
  BoundedGeoIndParams p;
  p.radius_m = 500.0;
  p.epsilon = eps;
  p.delta = 0.01;
  p.n = n;
  return p;
}

// ------------------------------------------------------------ calibration

TEST(Calibration, OneFoldSigmaMatchesLemma1) {
  // sigma = (r / eps) * sqrt(ln(1/delta^2) + eps)
  const double sigma = one_fold_sigma(500.0, 1.0, 0.01);
  const double expected = 500.0 * std::sqrt(std::log(1e4) + 1.0);
  EXPECT_NEAR(sigma, expected, 1e-9);
}

TEST(Calibration, NFoldSigmaIsSqrtNTimesOneFold) {
  const BoundedGeoIndParams p = paper_params(10);
  EXPECT_NEAR(n_fold_sigma(p),
              std::sqrt(10.0) * one_fold_sigma(500.0, 1.0, 0.01), 1e-9);
}

TEST(Calibration, CompositionSigmaUsesSplitBudget) {
  const BoundedGeoIndParams p = paper_params(10);
  EXPECT_NEAR(composition_sigma(p),
              one_fold_sigma(500.0, 0.1, 0.001), 1e-9);
}

TEST(Calibration, CompositionNoiseGrowsMuchFasterThanNFold) {
  // The headline analytic claim: sufficient statistics buy sqrt(n) noise
  // growth instead of the composition theorem's ~n growth.
  for (const std::size_t n : {2u, 5u, 10u}) {
    const BoundedGeoIndParams p = paper_params(n);
    EXPECT_GT(composition_sigma(p), n_fold_sigma(p))
        << "composition must be noisier at n = " << n;
  }
  // Ratio grows with n.
  const double ratio2 =
      composition_sigma(paper_params(2)) / n_fold_sigma(paper_params(2));
  const double ratio10 =
      composition_sigma(paper_params(10)) / n_fold_sigma(paper_params(10));
  EXPECT_GT(ratio10, ratio2);
}

TEST(Calibration, SigmaDecreasesWithEpsilon) {
  EXPECT_GT(one_fold_sigma(500.0, 1.0, 0.01),
            one_fold_sigma(500.0, 1.5, 0.01));
}

TEST(Calibration, InvalidParamsRejected) {
  EXPECT_THROW(one_fold_sigma(0.0, 1.0, 0.01), util::InvalidArgument);
  EXPECT_THROW(one_fold_sigma(500.0, -1.0, 0.01), util::InvalidArgument);
  EXPECT_THROW(one_fold_sigma(500.0, 1.0, 1.0), util::InvalidArgument);
  BoundedGeoIndParams p = paper_params();
  p.n = 0;
  EXPECT_THROW(p.validate(), util::InvalidArgument);
}

TEST(GeoIndParams, EpsilonIsLevelOverRadius) {
  const GeoIndParams p{std::log(4.0), 200.0};
  EXPECT_NEAR(p.epsilon(), std::log(4.0) / 200.0, 1e-15);
}

// --------------------------------------------------------- planar Laplace

TEST(PlanarLaplace, SingleOutputCenteredOnTruth) {
  const PlanarLaplaceMechanism mech({std::log(4.0), 200.0});
  rng::Engine e(1);
  const geo::Point truth{1000.0, -500.0};
  geo::Point sum{};
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const auto out = mech.obfuscate(e, truth);
    ASSERT_EQ(out.size(), 1u);
    sum = sum + out[0];
  }
  EXPECT_NEAR(sum.x / kN, truth.x, 10.0);
  EXPECT_NEAR(sum.y / kN, truth.y, 10.0);
  EXPECT_EQ(mech.output_count(), 1u);
}

TEST(PlanarLaplace, TailRadiusHoldsEmpirically) {
  const PlanarLaplaceMechanism mech({std::log(4.0), 200.0});
  rng::Engine e(2);
  const double r05 = mech.tail_radius(0.05);
  int beyond = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (geo::distance(mech.obfuscate_one(e, {0, 0}), {0, 0}) > r05) ++beyond;
  }
  EXPECT_NEAR(static_cast<double>(beyond) / kN, 0.05, 0.005);
}

TEST(PlanarLaplace, TailRadiusMonotoneInAlpha) {
  const PlanarLaplaceMechanism mech({std::log(2.0), 200.0});
  EXPECT_GT(mech.tail_radius(0.01), mech.tail_radius(0.05));
  EXPECT_GT(mech.tail_radius(0.05), mech.tail_radius(0.5));
}

// Empirical check of Definition 1: for the planar Laplace density, the
// ratio of densities at any output point q for two nearby inputs p0, p1 is
// bounded by exp(eps * d(p0, p1)).
TEST(PlanarLaplace, GeoIndDensityRatioBound) {
  const double eps = std::log(4.0) / 200.0;
  const geo::Point p0{0, 0};
  const geo::Point p1{150.0, -80.0};
  const double d01 = geo::distance(p0, p1);
  const double bound = std::exp(eps * d01);

  // density(q | p) ~ exp(-eps * |q - p|); the normalizer cancels.
  auto log_density = [&](geo::Point q, geo::Point p) {
    return -eps * geo::distance(q, p);
  };
  for (double x = -400.0; x <= 400.0; x += 50.0) {
    for (double y = -400.0; y <= 400.0; y += 50.0) {
      const double ratio =
          std::exp(log_density({x, y}, p0) - log_density({x, y}, p1));
      EXPECT_LE(ratio, bound * (1.0 + 1e-12));
    }
  }
}

// --------------------------------------------------------- n-fold Gaussian

TEST(NFoldGaussian, ProducesNOutputsAroundTruth) {
  const NFoldGaussianMechanism mech(paper_params(10));
  rng::Engine e(3);
  const geo::Point truth{-2000.0, 3000.0};
  const auto out = mech.obfuscate(e, truth);
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(mech.output_count(), 10u);
  // With sigma ~ 4.9 km, outputs stay within ~6 sigma of the truth.
  for (const geo::Point& q : out) {
    EXPECT_LT(geo::distance(q, truth), 6.0 * mech.sigma());
  }
}

TEST(NFoldGaussian, EmpiricalSigmaMatchesTheorem2) {
  const NFoldGaussianMechanism mech(paper_params(10));
  rng::Engine e(4);
  double sum2 = 0.0;
  std::size_t count = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    for (const geo::Point& q : mech.obfuscate(e, {0, 0})) {
      sum2 += q.x * q.x + q.y * q.y;
      count += 2;  // x and y are i.i.d. marginals
    }
  }
  // Per-axis variance should equal sigma^2 (two coordinates per point).
  EXPECT_NEAR(std::sqrt(sum2 / static_cast<double>(count)), mech.sigma(),
              mech.sigma() * 0.03);
}

TEST(NFoldGaussian, SampleMeanConcentratesAsSufficientStatistic) {
  // The mean of the n outputs must be N(p, sigma^2 / n) per axis -- the
  // heart of the Theorem 1/2 argument.
  const std::size_t n = 10;
  const NFoldGaussianMechanism mech(paper_params(n));
  rng::Engine e(5);
  const double expected_mean_sigma =
      mech.sigma() / std::sqrt(static_cast<double>(n));

  double sum2 = 0.0;
  constexpr int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    const geo::Point mean = geo::centroid(mech.obfuscate(e, {0, 0}));
    sum2 += mean.x * mean.x + mean.y * mean.y;
  }
  const double empirical = std::sqrt(sum2 / (2.0 * kTrials));
  EXPECT_NEAR(empirical, expected_mean_sigma, expected_mean_sigma * 0.03);
}

// Empirical (r, eps, delta)-geo-IND check on the sufficient statistic: for
// the 1-D Gaussian N(0, s) vs N(r, s), the privacy-loss bound
// Pr[X in S] <= e^eps Pr[X' in S] + delta holds for every threshold set
// when s is Lemma-1 calibrated. We verify on half-line sets, where the
// worst case lives.
TEST(NFoldGaussian, BoundedGeoIndHoldsOnHalfLines) {
  const double r = 500.0, eps = 1.0, delta = 0.01;
  const double s = one_fold_sigma(r, eps, delta);
  auto gauss_cdf = [](double x, double mu, double sigma) {
    return 0.5 * std::erfc(-(x - mu) / (sigma * std::numbers::sqrt2));
  };
  for (double t = -5.0 * s; t <= 5.0 * s + r; t += s / 20.0) {
    // S = (t, inf): the direction where mean 0 vs mean r differ most.
    const double pr_p0 = 1.0 - gauss_cdf(t, r, s);   // shifted by r
    const double pr_p1 = 1.0 - gauss_cdf(t, 0.0, s);
    EXPECT_LE(pr_p0, std::exp(eps) * pr_p1 + delta + 1e-12)
        << "threshold " << t;
  }
}

TEST(NFoldGaussian, TailRadiusHoldsEmpirically) {
  const NFoldGaussianMechanism mech(paper_params(1));
  rng::Engine e(6);
  const double r05 = mech.tail_radius(0.05);
  int beyond = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    if (geo::norm(mech.obfuscate(e, {0, 0})[0]) > r05) ++beyond;
  }
  EXPECT_NEAR(static_cast<double>(beyond) / kN, 0.05, 0.006);
}

// ---------------------------------------------------------------- baselines

TEST(NaivePostProcessing, OutputsShareOneAnchor) {
  const NaivePostProcessingMechanism mech(paper_params(10));
  rng::Engine e(7);
  const auto out = mech.obfuscate(e, {0, 0});
  ASSERT_EQ(out.size(), 10u);
  // All outputs lie within scatter radius of their mutual centroid-ish
  // anchor: pairwise distance bounded by 2 * scatter radius.
  for (std::size_t i = 0; i < out.size(); ++i) {
    for (std::size_t j = i + 1; j < out.size(); ++j) {
      EXPECT_LE(geo::distance(out[i], out[j]),
                2.0 * mech.scatter_radius() + 1e-9);
    }
  }
}

TEST(NaivePostProcessing, AnchorUsesLemma1Sigma) {
  const NaivePostProcessingMechanism mech(paper_params(10));
  EXPECT_NEAR(mech.sigma(), one_fold_sigma(500.0, 1.0, 0.01), 1e-12);
  EXPECT_DOUBLE_EQ(mech.scatter_radius(), 500.0);
}

TEST(NaivePostProcessing, CustomScatterRadius) {
  const NaivePostProcessingMechanism mech(paper_params(5), 1234.0);
  EXPECT_DOUBLE_EQ(mech.scatter_radius(), 1234.0);
  EXPECT_THROW(NaivePostProcessingMechanism(paper_params(5), -1.0),
               util::InvalidArgument);
}

TEST(PlainComposition, UsesInflatedSigma) {
  const PlainCompositionMechanism mech(paper_params(10));
  EXPECT_NEAR(mech.sigma(), composition_sigma(paper_params(10)), 1e-12);
  rng::Engine e(8);
  EXPECT_EQ(mech.obfuscate(e, {0, 0}).size(), 10u);
}

TEST(Mechanisms, NamesIdentifyParameters) {
  EXPECT_NE(NFoldGaussianMechanism(paper_params(10)).name().find("10-fold"),
            std::string::npos);
  EXPECT_NE(PlainCompositionMechanism(paper_params(3)).name().find("n=3"),
            std::string::npos);
  EXPECT_NE(PlanarLaplaceMechanism({std::log(4.0), 200.0})
                .name()
                .find("laplace"),
            std::string::npos);
}

// Parameterized sweep: every mechanism keeps its advertised output count
// and a finite tail radius across the paper's parameter grid.
struct MechCase {
  std::size_t n;
  double eps;
  double r;
};

class MechanismContract : public ::testing::TestWithParam<MechCase> {};

TEST_P(MechanismContract, OutputCountAndTailsAcrossGrid) {
  const auto& [n, eps, r] = GetParam();
  BoundedGeoIndParams p;
  p.n = n;
  p.epsilon = eps;
  p.radius_m = r;
  p.delta = 0.01;

  rng::Engine e(9);
  const std::vector<std::unique_ptr<Mechanism>> mechanisms = [&] {
    std::vector<std::unique_ptr<Mechanism>> v;
    v.push_back(std::make_unique<NFoldGaussianMechanism>(p));
    v.push_back(std::make_unique<NaivePostProcessingMechanism>(p));
    v.push_back(std::make_unique<PlainCompositionMechanism>(p));
    return v;
  }();
  for (const auto& mech : mechanisms) {
    EXPECT_EQ(mech->obfuscate(e, {10, 20}).size(), n) << mech->name();
    EXPECT_EQ(mech->output_count(), n) << mech->name();
    EXPECT_GT(mech->tail_radius(0.05), 0.0) << mech->name();
    EXPECT_TRUE(std::isfinite(mech->tail_radius(0.05))) << mech->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, MechanismContract,
    ::testing::Values(MechCase{1, 1.0, 500.0}, MechCase{5, 1.0, 500.0},
                      MechCase{10, 1.0, 500.0}, MechCase{10, 1.5, 500.0},
                      MechCase{10, 1.0, 800.0}, MechCase{3, 1.5, 600.0}));

// --------------------------------------- determinism / batched-release API

TEST(DeterminismContract, FixedSeedAndSamplerReproduceReleases) {
  // The contract the goldens and obfuscation tables rely on: seed +
  // sampler choice fully determine every release.
  const NFoldGaussianMechanism mech(paper_params(10));
  for (const rng::NormalSampler sampler :
       {rng::NormalSampler::kZiggurat, rng::NormalSampler::kInverseCdf}) {
    const rng::NormalSampler saved = rng::default_normal_sampler();
    rng::set_default_normal_sampler(sampler);
    rng::Engine a(42), b(42);
    const auto ra = mech.obfuscate(a, {100.0, 200.0});
    const auto rb = mech.obfuscate(b, {100.0, 200.0});
    rng::set_default_normal_sampler(saved);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_DOUBLE_EQ(ra[i].x, rb[i].x);
      EXPECT_DOUBLE_EQ(ra[i].y, rb[i].y);
    }
  }
}

TEST(DeterminismContract, SamplerChoiceChangesTheStream) {
  const NFoldGaussianMechanism mech(paper_params(10));
  const rng::NormalSampler saved = rng::default_normal_sampler();

  rng::set_default_normal_sampler(rng::NormalSampler::kZiggurat);
  rng::Engine a(42);
  const auto zig = mech.obfuscate(a, {100.0, 200.0});

  rng::set_default_normal_sampler(rng::NormalSampler::kInverseCdf);
  rng::Engine b(42);
  const auto icdf = mech.obfuscate(b, {100.0, 200.0});
  rng::set_default_normal_sampler(saved);

  ASSERT_EQ(zig.size(), icdf.size());
  bool any_different = false;
  for (std::size_t i = 0; i < zig.size(); ++i) {
    any_different |= zig[i].x != icdf[i].x || zig[i].y != icdf[i].y;
  }
  EXPECT_TRUE(any_different);
}

TEST(ObfuscateInto, SameStreamAsObfuscate) {
  // The zero-allocation path must consume the engine identically to the
  // allocating one, for every mechanism that overrides it and for the
  // base-class fallback.
  const std::vector<std::unique_ptr<Mechanism>> mechanisms = [&] {
    std::vector<std::unique_ptr<Mechanism>> v;
    v.push_back(std::make_unique<NFoldGaussianMechanism>(paper_params(10)));
    v.push_back(std::make_unique<PlainCompositionMechanism>(paper_params(7)));
    v.push_back(
        std::make_unique<NaivePostProcessingMechanism>(paper_params(5)));
    return v;
  }();
  for (const auto& mech : mechanisms) {
    rng::Engine a(77), b(77);
    const auto direct = mech->obfuscate(a, {-300.0, 450.0});
    std::vector<geo::Point> into{{1.0, 2.0}};  // stale contents overwritten
    mech->obfuscate_into(b, {-300.0, 450.0}, into);
    ASSERT_EQ(direct.size(), into.size()) << mech->name();
    for (std::size_t i = 0; i < direct.size(); ++i) {
      EXPECT_DOUBLE_EQ(direct[i].x, into[i].x) << mech->name();
      EXPECT_DOUBLE_EQ(direct[i].y, into[i].y) << mech->name();
    }
    EXPECT_EQ(a(), b()) << mech->name();  // engines in lockstep after
  }
}

TEST(ObfuscateInto, ReusedBufferKeepsCapacity) {
  const NFoldGaussianMechanism mech(paper_params(10));
  rng::Engine e(78);
  std::vector<geo::Point> buffer;
  mech.obfuscate_into(e, {0.0, 0.0}, buffer);
  EXPECT_EQ(buffer.size(), 10u);
  const std::size_t cap = buffer.capacity();
  mech.obfuscate_into(e, {5.0, 5.0}, buffer);
  EXPECT_EQ(buffer.size(), 10u);
  EXPECT_EQ(buffer.capacity(), cap);  // no reallocation on reuse
}

}  // namespace
}  // namespace privlocad::lppm
