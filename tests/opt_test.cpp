// Tests for the simplex solvers (dense tableau and sparse revised), the
// CSR constraint representation, and the LP-based optimal geo-IND
// mechanism built on them.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "lppm/optimal_mechanism.hpp"
#include "lppm/planar_laplace.hpp"
#include "opt/revised_simplex.hpp"
#include "opt/simplex.hpp"
#include "opt/sparse.hpp"
#include "rng/engine.hpp"
#include "util/validation.hpp"

namespace privlocad {
namespace {

using opt::CsrMatrix;
using opt::LpProblem;
using opt::LpStatus;
using opt::Matrix;
using opt::SparseLpProblem;

// ------------------------------------------------------------------ simplex

TEST(Simplex, SolvesTextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (Dantzig's example)
  // -> min -3x - 5y; optimum x = 2, y = 6, objective -36.
  LpProblem p;
  p.objective = {-3.0, -5.0};
  p.ub_lhs = Matrix(3, 2);
  p.ub_lhs.at(0, 0) = 1.0;
  p.ub_lhs.at(1, 1) = 2.0;
  p.ub_lhs.at(2, 0) = 3.0;
  p.ub_lhs.at(2, 1) = 2.0;
  p.ub_rhs = {4.0, 12.0, 18.0};

  const auto solution = opt::solve(p);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.x[0], 2.0, 1e-9);
  EXPECT_NEAR(solution.x[1], 6.0, 1e-9);
  EXPECT_NEAR(solution.objective, -36.0, 1e-9);
}

TEST(Simplex, HandlesEqualityConstraints) {
  // min x + 2y s.t. x + y = 10, x <= 4 -> x = 4, y = 6, obj 16.
  LpProblem p;
  p.objective = {1.0, 2.0};
  p.eq_lhs = Matrix(1, 2);
  p.eq_lhs.at(0, 0) = 1.0;
  p.eq_lhs.at(0, 1) = 1.0;
  p.eq_rhs = {10.0};
  p.ub_lhs = Matrix(1, 2);
  p.ub_lhs.at(0, 0) = 1.0;
  p.ub_rhs = {4.0};

  const auto solution = opt::solve(p);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.x[0], 4.0, 1e-9);
  EXPECT_NEAR(solution.x[1], 6.0, 1e-9);
  EXPECT_NEAR(solution.objective, 16.0, 1e-9);
}

TEST(Simplex, DetectsInfeasibility) {
  // x = 5 and x <= 3 cannot both hold.
  LpProblem p;
  p.objective = {1.0};
  p.eq_lhs = Matrix(1, 1);
  p.eq_lhs.at(0, 0) = 1.0;
  p.eq_rhs = {5.0};
  p.ub_lhs = Matrix(1, 1);
  p.ub_lhs.at(0, 0) = 1.0;
  p.ub_rhs = {3.0};
  EXPECT_EQ(opt::solve(p).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  // min -x with no upper bound on x.
  LpProblem p;
  p.objective = {-1.0};
  EXPECT_EQ(opt::solve(p).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsEqualityNormalized) {
  // -x - y = -10 (i.e. x + y = 10), min x + 2y, y <= 7 -> x=3? No upper on
  // x: min picks x as large as possible... objective favors x over y:
  // x = 10, y = 0, obj 10; y-bound irrelevant.
  LpProblem p;
  p.objective = {1.0, 2.0};
  p.eq_lhs = Matrix(1, 2);
  p.eq_lhs.at(0, 0) = -1.0;
  p.eq_lhs.at(0, 1) = -1.0;
  p.eq_rhs = {-10.0};
  p.ub_lhs = Matrix(1, 2);
  p.ub_lhs.at(0, 1) = 1.0;
  p.ub_rhs = {7.0};
  const auto solution = opt::solve(p);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 10.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex (classic
  // degeneracy); Bland's rule must still terminate.
  LpProblem p;
  p.objective = {-1.0, -1.0};
  p.ub_lhs = Matrix(4, 2);
  p.ub_lhs.at(0, 0) = 1.0;
  p.ub_lhs.at(1, 1) = 1.0;
  p.ub_lhs.at(2, 0) = 1.0;
  p.ub_lhs.at(2, 1) = 1.0;
  p.ub_lhs.at(3, 0) = 2.0;
  p.ub_lhs.at(3, 1) = 2.0;
  p.ub_rhs = {1.0, 1.0, 1.0, 2.0};
  const auto solution = opt::solve(p);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, -1.0, 1e-9);
}

TEST(Simplex, ValidatesDimensions) {
  LpProblem p;
  p.objective = {1.0, 1.0};
  p.eq_lhs = Matrix(1, 3);  // wrong column count
  p.eq_rhs = {1.0};
  EXPECT_THROW(opt::solve(p), util::InvalidArgument);
  LpProblem empty;
  EXPECT_THROW(opt::solve(empty), util::InvalidArgument);
}

TEST(Simplex, DimensionErrorsNameTheMismatch) {
  // The error text carries both sizes so a bad LP is diagnosable from the
  // exception alone.
  LpProblem p;
  p.objective = {1.0, 1.0};
  p.eq_lhs = Matrix(2, 2);
  p.eq_rhs = {1.0};  // 2 rows vs 1 rhs entry
  try {
    opt::solve(p);
    FAIL() << "expected util::InvalidArgument";
  } catch (const util::InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("A_eq has 2 rows"), std::string::npos) << what;
    EXPECT_NE(what.find("b_eq has 1 entries"), std::string::npos) << what;
  }

  LpProblem q;
  q.objective = {1.0, 1.0};
  q.ub_lhs = Matrix(1, 3);
  q.ub_rhs = {1.0};  // 3 columns vs 2 variables
  try {
    opt::solve(q);
    FAIL() << "expected util::InvalidArgument";
  } catch (const util::InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("A_ub has 3 columns"), std::string::npos) << what;
    EXPECT_NE(what.find("2 variables"), std::string::npos) << what;
  }
}

TEST(Simplex, ReportsIterationLimit) {
  // One iteration cannot reach the Dantzig-example optimum.
  LpProblem p;
  p.objective = {-3.0, -5.0};
  p.ub_lhs = Matrix(3, 2);
  p.ub_lhs.at(0, 0) = 1.0;
  p.ub_lhs.at(1, 1) = 2.0;
  p.ub_lhs.at(2, 0) = 3.0;
  p.ub_lhs.at(2, 1) = 2.0;
  p.ub_rhs = {4.0, 12.0, 18.0};
  opt::SimplexOptions options;
  options.max_iterations = 1;
  EXPECT_EQ(opt::solve(p, options).status, LpStatus::kIterationLimit);
}

TEST(Simplex, CountsPivotsInSolveStats) {
  LpProblem p;
  p.objective = {-3.0, -5.0};
  p.ub_lhs = Matrix(3, 2);
  p.ub_lhs.at(0, 0) = 1.0;
  p.ub_lhs.at(1, 1) = 2.0;
  p.ub_lhs.at(2, 0) = 3.0;
  p.ub_lhs.at(2, 1) = 2.0;
  p.ub_rhs = {4.0, 12.0, 18.0};
  const auto solution = opt::solve(p);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  // All-positive rhs: phase 1 is skipped outright, phase 2 must move.
  EXPECT_EQ(solution.stats.phase1_iterations, 0u);
  EXPECT_GE(solution.stats.phase2_iterations, 2u);
  EXPECT_EQ(solution.stats.pivots, solution.stats.phase1_iterations +
                                       solution.stats.phase2_iterations);
}

#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST) && GTEST_HAS_DEATH_TEST
TEST(MatrixDeathTest, OutOfRangeAccessAssertsInDebugBuilds) {
  Matrix m(2, 3);
  EXPECT_DEATH(m.at(2, 0), "out of range");
  EXPECT_DEATH(m.at(0, 3), "out of range");
}
#endif

// ------------------------------------------------------------ sparse (CSR)

TEST(CsrMatrix, BuildsIncrementallyAndRoundTripsFromDense) {
  CsrMatrix m(4);
  m.append(0, 1.0);
  m.append(3, -2.0);
  m.finish_row();
  m.finish_row();  // empty row
  m.append(2, 5.0);
  m.finish_row();
  ASSERT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.nonzeros(), 3u);
  EXPECT_EQ(m.row_end(0) - m.row_begin(0), 2u);
  EXPECT_EQ(m.row_end(1) - m.row_begin(1), 0u);
  EXPECT_EQ(m.col_index(m.row_begin(2)), 2u);
  EXPECT_DOUBLE_EQ(m.value(m.row_begin(2)), 5.0);

  Matrix dense(3, 4);
  dense.at(0, 0) = 1.0;
  dense.at(0, 3) = -2.0;
  dense.at(2, 2) = 5.0;
  const CsrMatrix converted = CsrMatrix::from_dense(dense);
  ASSERT_EQ(converted.rows(), m.rows());
  ASSERT_EQ(converted.nonzeros(), m.nonzeros());
  for (std::size_t nz = 0; nz < m.nonzeros(); ++nz) {
    EXPECT_EQ(converted.col_index(nz), m.col_index(nz));
    EXPECT_DOUBLE_EQ(converted.value(nz), m.value(nz));
  }
}

TEST(CsrMatrix, FromDenseDropsSmallEntriesWithTolerance) {
  Matrix dense(1, 3);
  dense.at(0, 0) = 1.0;
  dense.at(0, 1) = 1e-15;
  const CsrMatrix kept = CsrMatrix::from_dense(dense);
  const CsrMatrix pruned = CsrMatrix::from_dense(dense, 1e-12);
  EXPECT_EQ(kept.nonzeros(), 2u);
  EXPECT_EQ(pruned.nonzeros(), 1u);
}

// ------------------------------------------------------- revised simplex

SparseLpProblem sparse_dantzig() {
  // Same LP as Simplex.SolvesTextbookMaximization.
  SparseLpProblem p;
  p.objective = {-3.0, -5.0};
  p.ub_lhs = CsrMatrix(2);
  p.ub_lhs.append(0, 1.0);
  p.ub_lhs.finish_row();
  p.ub_lhs.append(1, 2.0);
  p.ub_lhs.finish_row();
  p.ub_lhs.append(0, 3.0);
  p.ub_lhs.append(1, 2.0);
  p.ub_lhs.finish_row();
  p.ub_rhs = {4.0, 12.0, 18.0};
  return p;
}

TEST(RevisedSimplex, SolvesTextbookMaximization) {
  const auto solution = opt::solve_sparse(sparse_dantzig());
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.x[0], 2.0, 1e-9);
  EXPECT_NEAR(solution.x[1], 6.0, 1e-9);
  EXPECT_NEAR(solution.objective, -36.0, 1e-9);
  EXPECT_GE(solution.stats.pivots, 2u);
}

TEST(RevisedSimplex, HandlesEqualityAndNegativeRhs) {
  // -x - y = -10 (normalized to x + y = 10), min x + 2y, y <= 7.
  SparseLpProblem p;
  p.objective = {1.0, 2.0};
  p.eq_lhs = CsrMatrix(2);
  p.eq_lhs.append(0, -1.0);
  p.eq_lhs.append(1, -1.0);
  p.eq_lhs.finish_row();
  p.eq_rhs = {-10.0};
  p.ub_lhs = CsrMatrix(2);
  p.ub_lhs.append(1, 1.0);
  p.ub_lhs.finish_row();
  p.ub_rhs = {7.0};
  const auto solution = opt::solve_sparse(p);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 10.0, 1e-9);
}

TEST(RevisedSimplex, DetectsInfeasibility) {
  SparseLpProblem p;
  p.objective = {1.0};
  p.eq_lhs = CsrMatrix(1);
  p.eq_lhs.append(0, 1.0);
  p.eq_lhs.finish_row();
  p.eq_rhs = {5.0};
  p.ub_lhs = CsrMatrix(1);
  p.ub_lhs.append(0, 1.0);
  p.ub_lhs.finish_row();
  p.ub_rhs = {3.0};
  EXPECT_EQ(opt::solve_sparse(p).status, LpStatus::kInfeasible);
}

TEST(RevisedSimplex, DetectsUnboundedness) {
  // min -x with only a lower-bounding style constraint (x >= 1 written as
  // -x <= -1): x can grow without limit. Exercises the flipped-ub path
  // too (negative rhs row gets an artificial).
  SparseLpProblem p;
  p.objective = {-1.0};
  p.ub_lhs = CsrMatrix(1);
  p.ub_lhs.append(0, -1.0);
  p.ub_lhs.finish_row();
  p.ub_rhs = {-1.0};
  EXPECT_EQ(opt::solve_sparse(p).status, LpStatus::kUnbounded);
}

TEST(RevisedSimplex, HandlesEmptyConstraintBlocks) {
  // Only equalities (no ub rows): min x + y s.t. x + y = 4.
  SparseLpProblem eq_only;
  eq_only.objective = {1.0, 1.0};
  eq_only.eq_lhs = CsrMatrix(2);
  eq_only.eq_lhs.append(0, 1.0);
  eq_only.eq_lhs.append(1, 1.0);
  eq_only.eq_lhs.finish_row();
  eq_only.eq_rhs = {4.0};
  auto solution = opt::solve_sparse(eq_only);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 4.0, 1e-9);

  // Only inequalities (no eq rows) is the Dantzig example above; empty
  // everything is unbounded below at cost -x.
  SparseLpProblem free_var;
  free_var.objective = {-1.0};
  free_var.eq_lhs = CsrMatrix(1);
  free_var.ub_lhs = CsrMatrix(1);
  EXPECT_EQ(opt::solve_sparse(free_var).status, LpStatus::kUnbounded);
}

TEST(RevisedSimplex, ReportsIterationLimit) {
  opt::SimplexOptions options;
  options.max_iterations = 1;
  EXPECT_EQ(opt::solve_sparse(sparse_dantzig(), options).status,
            LpStatus::kIterationLimit);
}

TEST(RevisedSimplex, ValidatesSparseStructure) {
  SparseLpProblem p;
  p.objective = {1.0, 1.0};
  p.ub_lhs = CsrMatrix(3);  // wrong column count
  p.ub_lhs.append(0, 1.0);
  p.ub_lhs.finish_row();
  p.ub_rhs = {1.0};
  try {
    opt::solve_sparse(p);
    FAIL() << "expected util::InvalidArgument";
  } catch (const util::InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("A_ub has 3 columns"), std::string::npos) << what;
  }

  SparseLpProblem rows;
  rows.objective = {1.0};
  rows.ub_lhs = CsrMatrix(1);
  rows.ub_lhs.append(0, 1.0);
  rows.ub_lhs.finish_row();
  rows.ub_rhs = {1.0, 2.0};  // extra rhs entry
  try {
    opt::solve_sparse(rows);
    FAIL() << "expected util::InvalidArgument";
  } catch (const util::InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("A_ub has 1 rows"), std::string::npos) << what;
    EXPECT_NE(what.find("b_ub has 2 entries"), std::string::npos) << what;
  }
}

TEST(RevisedSimplex, WarmResolveMatchesColdSolve) {
  opt::RevisedSimplex solver(sparse_dantzig());
  const auto first = solver.solve();
  ASSERT_EQ(first.status, LpStatus::kOptimal);
  EXPECT_NEAR(first.objective, -36.0, 1e-9);

  // New objective, same constraints: warm phase-2 restart must agree with
  // a cold solve of the modified problem.
  const std::vector<double> tilted = {-5.0, -3.0};
  const auto warm = solver.resolve(tilted);
  ASSERT_EQ(warm.status, LpStatus::kOptimal);

  SparseLpProblem cold_problem = sparse_dantzig();
  cold_problem.objective = tilted;
  const auto cold = opt::solve_sparse(cold_problem);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
  ASSERT_EQ(warm.x.size(), cold.x.size());
  for (std::size_t i = 0; i < warm.x.size(); ++i) {
    EXPECT_NEAR(warm.x[i], cold.x[i], 1e-9);
  }
  // Cumulative stats keep growing across calls.
  EXPECT_GE(solver.stats().pivots, first.stats.pivots);
}

// The documented O(perturbation * rows) error bound on the anti-degeneracy
// rhs perturbation (see SimplexOptions::degeneracy_perturbation): by
// duality the objective shift is at most sum_r |y*_r| * pert * (r + 1).
// For the Dantzig example the optimal duals are (0, 3/2, 1), so the shift
// is bounded by pert * (2 * 1.5 + 3 * 1) = 6 * pert; assert with slack.
TEST(SimplexTest, PerturbationObjectiveErrorIsLinearlyBounded) {
  for (const double pert : {1e-8, 1e-6, 1e-4, 1e-2}) {
    opt::SimplexOptions options;
    options.degeneracy_perturbation = pert;
    const double bound = 10.0 * pert * 3.0;  // slack * pert * rows

    LpProblem dense;
    dense.objective = {-3.0, -5.0};
    dense.ub_lhs = Matrix(3, 2);
    dense.ub_lhs.at(0, 0) = 1.0;
    dense.ub_lhs.at(1, 1) = 2.0;
    dense.ub_lhs.at(2, 0) = 3.0;
    dense.ub_lhs.at(2, 1) = 2.0;
    dense.ub_rhs = {4.0, 12.0, 18.0};
    const auto dense_solution = opt::solve(dense, options);
    ASSERT_EQ(dense_solution.status, LpStatus::kOptimal);
    EXPECT_NEAR(dense_solution.objective, -36.0, bound) << "pert=" << pert;

    const auto sparse_solution = opt::solve_sparse(sparse_dantzig(), options);
    ASSERT_EQ(sparse_solution.status, LpStatus::kOptimal);
    EXPECT_NEAR(sparse_solution.objective, -36.0, bound) << "pert=" << pert;
  }
}

// --------------------------------------- sparse vs dense on the geo-IND LP

TEST(RevisedSimplex, AgreesWithDenseOnGeoIndLp) {
  // Assemble the same geo-IND channel LP through both builders and check
  // the two solvers land on the same optimum (tie-broken vertices can
  // differ; the objective cannot).
  for (const std::size_t side : {2u, 3u}) {
    const std::size_t k = side * side;
    std::vector<geo::Point> centers;
    for (std::size_t r = 0; r < side; ++r) {
      for (std::size_t c = 0; c < side; ++c) {
        centers.push_back({static_cast<double>(c) * 250.0,
                           static_cast<double>(r) * 250.0});
      }
    }
    const std::vector<double> prior(k, 1.0 / static_cast<double>(k));
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        if (i != j) edges.emplace_back(i, j);  // all pairs: dilation 1
      }
    }
    const double edge_epsilon = std::log(4.0) / 200.0;

    const LpProblem dense =
        lppm::build_geo_ind_lp_dense(centers, prior, edges, edge_epsilon);
    const SparseLpProblem sparse =
        lppm::build_geo_ind_lp_sparse(centers, prior, edges, edge_epsilon);

    // Structural agreement: the sparse assembly is exactly the nonzero
    // pattern of the dense one.
    const CsrMatrix from_dense_ub = CsrMatrix::from_dense(dense.ub_lhs);
    ASSERT_EQ(from_dense_ub.nonzeros(), sparse.ub_lhs.nonzeros());
    for (std::size_t nz = 0; nz < from_dense_ub.nonzeros(); ++nz) {
      EXPECT_EQ(from_dense_ub.col_index(nz), sparse.ub_lhs.col_index(nz));
      EXPECT_DOUBLE_EQ(from_dense_ub.value(nz), sparse.ub_lhs.value(nz));
    }

    opt::SimplexOptions options;
    options.degeneracy_perturbation = 1e-8;
    options.max_iterations = 200000;
    const auto dense_solution = opt::solve(dense, options);
    const auto sparse_solution = opt::solve_sparse(sparse, options);
    ASSERT_EQ(dense_solution.status, LpStatus::kOptimal) << "side=" << side;
    ASSERT_EQ(sparse_solution.status, LpStatus::kOptimal) << "side=" << side;
    EXPECT_NEAR(sparse_solution.objective, dense_solution.objective,
                1e-7 * (1.0 + std::abs(dense_solution.objective)))
        << "side=" << side;
  }
}

// ------------------------------------------------------- optimal mechanism

lppm::OptimalMechanismConfig small_grid() {
  lppm::OptimalMechanismConfig c;
  c.per_side = 3;
  c.cell_spacing_m = 250.0;
  c.epsilon = std::log(4.0) / 200.0;
  return c;
}

TEST(OptimalMechanism, ChannelRowsAreDistributions) {
  const lppm::OptimalGeoIndMechanism mech(small_grid());
  for (std::size_t i = 0; i < mech.cell_count(); ++i) {
    double sum = 0.0;
    for (const double p : mech.channel_row(i)) {
      EXPECT_GE(p, -1e-12);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(OptimalMechanism, SatisfiesAllPairGeoIndConstraints) {
  // The spanner construction must yield full-epsilon geo-IND between
  // EVERY cell pair, not just grid neighbors.
  const lppm::OptimalGeoIndMechanism mech(small_grid());
  EXPECT_LE(mech.max_constraint_violation(), 1e-9);
}

TEST(OptimalMechanism, BeatsLaplaceQualityLossOnTheGrid) {
  // The whole point of the optimal mechanism: at equal epsilon its
  // expected quality loss is at most the (discretized) Laplace loss. The
  // continuous planar Laplace has E[|noise|] = 2 / eps.
  const auto config = small_grid();
  const lppm::OptimalGeoIndMechanism mech(config);
  const double laplace_loss = 2.0 / config.epsilon;
  EXPECT_LT(mech.expected_quality_loss(), laplace_loss);
}

TEST(OptimalMechanism, SamplesMatchChannelFrequencies) {
  const lppm::OptimalGeoIndMechanism mech(small_grid());
  rng::Engine e(5);
  const geo::Point truth = mech.cell_center(4);  // grid center
  std::vector<int> counts(mech.cell_count(), 0);
  constexpr int kN = 60000;
  for (int i = 0; i < kN; ++i) {
    const geo::Point q = mech.obfuscate(e, truth)[0];
    for (std::size_t j = 0; j < mech.cell_count(); ++j) {
      if (geo::distance(q, mech.cell_center(j)) < 1e-9) {
        ++counts[j];
        break;
      }
    }
  }
  const auto& row = mech.channel_row(4);
  for (std::size_t j = 0; j < mech.cell_count(); ++j) {
    EXPECT_NEAR(static_cast<double>(counts[j]) / kN, row[j], 0.01);
  }
}

TEST(OptimalMechanism, InformativePriorReducesLoss) {
  // Concentrating the prior on one cell lets the LP specialize: loss under
  // the point-ish prior is <= loss under the uniform prior.
  const lppm::OptimalGeoIndMechanism uniform(small_grid());
  auto config = small_grid();
  config.prior.assign(9, 0.02);
  config.prior[4] = 0.84;  // mass on the center cell
  const lppm::OptimalGeoIndMechanism informed(config);
  EXPECT_LE(informed.expected_quality_loss(),
            uniform.expected_quality_loss() + 1e-9);
}

TEST(OptimalMechanism, SnapsArbitraryInputToNearestCell) {
  const lppm::OptimalGeoIndMechanism mech(small_grid());
  rng::Engine e(6);
  // A point close to the corner cell behaves like the corner cell.
  const geo::Point corner = mech.cell_center(0);
  const auto q = mech.obfuscate(e, corner + geo::Point{10.0, -10.0});
  ASSERT_EQ(q.size(), 1u);
  // Output is always some cell center.
  bool is_center = false;
  for (std::size_t j = 0; j < mech.cell_count(); ++j) {
    if (geo::distance(q[0], mech.cell_center(j)) < 1e-9) is_center = true;
  }
  EXPECT_TRUE(is_center);
}

TEST(OptimalMechanism, TailRadiusCoversMass) {
  const lppm::OptimalGeoIndMechanism mech(small_grid());
  const double r = mech.tail_radius(0.05);
  EXPECT_GT(r, 0.0);
  // The full grid diameter always covers everything.
  EXPECT_LE(r, 250.0 * 2.0 * std::sqrt(2.0) + 1e-9);
}

TEST(OptimalMechanism, InvalidConfigsRejected) {
  auto c = small_grid();
  c.per_side = 1;
  EXPECT_THROW(lppm::OptimalGeoIndMechanism{c}, util::InvalidArgument);
  c = small_grid();
  c.prior.assign(5, 0.2);  // wrong size
  EXPECT_THROW(lppm::OptimalGeoIndMechanism{c}, util::InvalidArgument);
  c = small_grid();
  c.prior.assign(9, 0.0);  // zero mass
  EXPECT_THROW(lppm::OptimalGeoIndMechanism{c}, util::InvalidArgument);
}

}  // namespace
}  // namespace privlocad
