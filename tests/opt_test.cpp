// Tests for the dense two-phase simplex solver and the LP-based optimal
// geo-IND mechanism built on it.
#include <gtest/gtest.h>

#include <cmath>

#include "lppm/optimal_mechanism.hpp"
#include "lppm/planar_laplace.hpp"
#include "opt/simplex.hpp"
#include "rng/engine.hpp"
#include "util/validation.hpp"

namespace privlocad {
namespace {

using opt::LpProblem;
using opt::LpStatus;
using opt::Matrix;

// ------------------------------------------------------------------ simplex

TEST(Simplex, SolvesTextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (Dantzig's example)
  // -> min -3x - 5y; optimum x = 2, y = 6, objective -36.
  LpProblem p;
  p.objective = {-3.0, -5.0};
  p.ub_lhs = Matrix(3, 2);
  p.ub_lhs.at(0, 0) = 1.0;
  p.ub_lhs.at(1, 1) = 2.0;
  p.ub_lhs.at(2, 0) = 3.0;
  p.ub_lhs.at(2, 1) = 2.0;
  p.ub_rhs = {4.0, 12.0, 18.0};

  const auto solution = opt::solve(p);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.x[0], 2.0, 1e-9);
  EXPECT_NEAR(solution.x[1], 6.0, 1e-9);
  EXPECT_NEAR(solution.objective, -36.0, 1e-9);
}

TEST(Simplex, HandlesEqualityConstraints) {
  // min x + 2y s.t. x + y = 10, x <= 4 -> x = 4, y = 6, obj 16.
  LpProblem p;
  p.objective = {1.0, 2.0};
  p.eq_lhs = Matrix(1, 2);
  p.eq_lhs.at(0, 0) = 1.0;
  p.eq_lhs.at(0, 1) = 1.0;
  p.eq_rhs = {10.0};
  p.ub_lhs = Matrix(1, 2);
  p.ub_lhs.at(0, 0) = 1.0;
  p.ub_rhs = {4.0};

  const auto solution = opt::solve(p);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.x[0], 4.0, 1e-9);
  EXPECT_NEAR(solution.x[1], 6.0, 1e-9);
  EXPECT_NEAR(solution.objective, 16.0, 1e-9);
}

TEST(Simplex, DetectsInfeasibility) {
  // x = 5 and x <= 3 cannot both hold.
  LpProblem p;
  p.objective = {1.0};
  p.eq_lhs = Matrix(1, 1);
  p.eq_lhs.at(0, 0) = 1.0;
  p.eq_rhs = {5.0};
  p.ub_lhs = Matrix(1, 1);
  p.ub_lhs.at(0, 0) = 1.0;
  p.ub_rhs = {3.0};
  EXPECT_EQ(opt::solve(p).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  // min -x with no upper bound on x.
  LpProblem p;
  p.objective = {-1.0};
  EXPECT_EQ(opt::solve(p).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsEqualityNormalized) {
  // -x - y = -10 (i.e. x + y = 10), min x + 2y, y <= 7 -> x=3? No upper on
  // x: min picks x as large as possible... objective favors x over y:
  // x = 10, y = 0, obj 10; y-bound irrelevant.
  LpProblem p;
  p.objective = {1.0, 2.0};
  p.eq_lhs = Matrix(1, 2);
  p.eq_lhs.at(0, 0) = -1.0;
  p.eq_lhs.at(0, 1) = -1.0;
  p.eq_rhs = {-10.0};
  p.ub_lhs = Matrix(1, 2);
  p.ub_lhs.at(0, 1) = 1.0;
  p.ub_rhs = {7.0};
  const auto solution = opt::solve(p);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 10.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex (classic
  // degeneracy); Bland's rule must still terminate.
  LpProblem p;
  p.objective = {-1.0, -1.0};
  p.ub_lhs = Matrix(4, 2);
  p.ub_lhs.at(0, 0) = 1.0;
  p.ub_lhs.at(1, 1) = 1.0;
  p.ub_lhs.at(2, 0) = 1.0;
  p.ub_lhs.at(2, 1) = 1.0;
  p.ub_lhs.at(3, 0) = 2.0;
  p.ub_lhs.at(3, 1) = 2.0;
  p.ub_rhs = {1.0, 1.0, 1.0, 2.0};
  const auto solution = opt::solve(p);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, -1.0, 1e-9);
}

TEST(Simplex, ValidatesDimensions) {
  LpProblem p;
  p.objective = {1.0, 1.0};
  p.eq_lhs = Matrix(1, 3);  // wrong column count
  p.eq_rhs = {1.0};
  EXPECT_THROW(opt::solve(p), util::InvalidArgument);
  LpProblem empty;
  EXPECT_THROW(opt::solve(empty), util::InvalidArgument);
}

// ------------------------------------------------------- optimal mechanism

lppm::OptimalMechanismConfig small_grid() {
  lppm::OptimalMechanismConfig c;
  c.per_side = 3;
  c.cell_spacing_m = 250.0;
  c.epsilon = std::log(4.0) / 200.0;
  return c;
}

TEST(OptimalMechanism, ChannelRowsAreDistributions) {
  const lppm::OptimalGeoIndMechanism mech(small_grid());
  for (std::size_t i = 0; i < mech.cell_count(); ++i) {
    double sum = 0.0;
    for (const double p : mech.channel_row(i)) {
      EXPECT_GE(p, -1e-12);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(OptimalMechanism, SatisfiesAllPairGeoIndConstraints) {
  // The spanner construction must yield full-epsilon geo-IND between
  // EVERY cell pair, not just grid neighbors.
  const lppm::OptimalGeoIndMechanism mech(small_grid());
  EXPECT_LE(mech.max_constraint_violation(), 1e-9);
}

TEST(OptimalMechanism, BeatsLaplaceQualityLossOnTheGrid) {
  // The whole point of the optimal mechanism: at equal epsilon its
  // expected quality loss is at most the (discretized) Laplace loss. The
  // continuous planar Laplace has E[|noise|] = 2 / eps.
  const auto config = small_grid();
  const lppm::OptimalGeoIndMechanism mech(config);
  const double laplace_loss = 2.0 / config.epsilon;
  EXPECT_LT(mech.expected_quality_loss(), laplace_loss);
}

TEST(OptimalMechanism, SamplesMatchChannelFrequencies) {
  const lppm::OptimalGeoIndMechanism mech(small_grid());
  rng::Engine e(5);
  const geo::Point truth = mech.cell_center(4);  // grid center
  std::vector<int> counts(mech.cell_count(), 0);
  constexpr int kN = 60000;
  for (int i = 0; i < kN; ++i) {
    const geo::Point q = mech.obfuscate(e, truth)[0];
    for (std::size_t j = 0; j < mech.cell_count(); ++j) {
      if (geo::distance(q, mech.cell_center(j)) < 1e-9) {
        ++counts[j];
        break;
      }
    }
  }
  const auto& row = mech.channel_row(4);
  for (std::size_t j = 0; j < mech.cell_count(); ++j) {
    EXPECT_NEAR(static_cast<double>(counts[j]) / kN, row[j], 0.01);
  }
}

TEST(OptimalMechanism, InformativePriorReducesLoss) {
  // Concentrating the prior on one cell lets the LP specialize: loss under
  // the point-ish prior is <= loss under the uniform prior.
  const lppm::OptimalGeoIndMechanism uniform(small_grid());
  auto config = small_grid();
  config.prior.assign(9, 0.02);
  config.prior[4] = 0.84;  // mass on the center cell
  const lppm::OptimalGeoIndMechanism informed(config);
  EXPECT_LE(informed.expected_quality_loss(),
            uniform.expected_quality_loss() + 1e-9);
}

TEST(OptimalMechanism, SnapsArbitraryInputToNearestCell) {
  const lppm::OptimalGeoIndMechanism mech(small_grid());
  rng::Engine e(6);
  // A point close to the corner cell behaves like the corner cell.
  const geo::Point corner = mech.cell_center(0);
  const auto q = mech.obfuscate(e, corner + geo::Point{10.0, -10.0});
  ASSERT_EQ(q.size(), 1u);
  // Output is always some cell center.
  bool is_center = false;
  for (std::size_t j = 0; j < mech.cell_count(); ++j) {
    if (geo::distance(q[0], mech.cell_center(j)) < 1e-9) is_center = true;
  }
  EXPECT_TRUE(is_center);
}

TEST(OptimalMechanism, TailRadiusCoversMass) {
  const lppm::OptimalGeoIndMechanism mech(small_grid());
  const double r = mech.tail_radius(0.05);
  EXPECT_GT(r, 0.0);
  // The full grid diameter always covers everything.
  EXPECT_LE(r, 250.0 * 2.0 * std::sqrt(2.0) + 1e-9);
}

TEST(OptimalMechanism, InvalidConfigsRejected) {
  auto c = small_grid();
  c.per_side = 1;
  EXPECT_THROW(lppm::OptimalGeoIndMechanism{c}, util::InvalidArgument);
  c = small_grid();
  c.prior.assign(5, 0.2);  // wrong size
  EXPECT_THROW(lppm::OptimalGeoIndMechanism{c}, util::InvalidArgument);
  c = small_grid();
  c.prior.assign(9, 0.0);  // zero mass
  EXPECT_THROW(lppm::OptimalGeoIndMechanism{c}, util::InvalidArgument);
}

}  // namespace
}  // namespace privlocad
