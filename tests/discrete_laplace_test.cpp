// Tests for the discretized + truncated planar Laplace mechanism.
#include <gtest/gtest.h>

#include <cmath>

#include "lppm/discrete_laplace.hpp"
#include "lppm/planar_laplace.hpp"
#include "rng/engine.hpp"
#include "util/validation.hpp"

namespace privlocad::lppm {
namespace {

geo::BoundingBox city_box() {
  return geo::BoundingBox({-40000, -40000}, {40000, 40000});
}

DiscretePlanarLaplaceMechanism make_mech(double spacing = 50.0) {
  return DiscretePlanarLaplaceMechanism({std::log(4.0), 200.0}, spacing,
                                        city_box());
}

TEST(DiscreteLaplace, OutputsSnapToGrid) {
  const auto mech = make_mech(50.0);
  rng::Engine e(1);
  for (int i = 0; i < 200; ++i) {
    const geo::Point q = mech.obfuscate_one(e, {123.0, -456.0});
    EXPECT_NEAR(std::remainder(q.x, 50.0), 0.0, 1e-9);
    EXPECT_NEAR(std::remainder(q.y, 50.0), 0.0, 1e-9);
  }
}

TEST(DiscreteLaplace, OutputsStayInsideRegion) {
  const auto mech = make_mech(50.0);
  rng::Engine e(2);
  // A real location at the region's corner: noise would frequently leave
  // the box; truncation must clamp every output back inside.
  for (int i = 0; i < 500; ++i) {
    const geo::Point q = mech.obfuscate_one(e, {39990.0, 39990.0});
    EXPECT_TRUE(city_box().contains(q));
  }
}

TEST(DiscreteLaplace, CenteredLikeTheContinuousMechanism) {
  const auto mech = make_mech(25.0);
  rng::Engine e(3);
  geo::Point sum{};
  constexpr int kN = 30000;
  for (int i = 0; i < kN; ++i) {
    sum = sum + mech.obfuscate_one(e, {1000.0, 2000.0});
  }
  EXPECT_NEAR(sum.x / kN, 1000.0, 10.0);
  EXPECT_NEAR(sum.y / kN, 2000.0, 10.0);
}

TEST(DiscreteLaplace, TailRadiusAccountsForSnapDisplacement) {
  const auto discrete = make_mech(100.0);
  const PlanarLaplaceMechanism continuous({std::log(4.0), 200.0});
  EXPECT_GT(discrete.tail_radius(0.05), continuous.tail_radius(0.05));
  EXPECT_NEAR(discrete.tail_radius(0.05) - continuous.tail_radius(0.05),
              100.0 * std::sqrt(2.0) / 2.0, 1e-9);
}

TEST(DiscreteLaplace, EffectiveEpsilonExceedsNominal) {
  const auto mech = make_mech(50.0);
  EXPECT_GT(mech.effective_epsilon(), mech.nominal_epsilon());
  // Finer grids cost less privacy.
  const auto finer = make_mech(10.0);
  EXPECT_LT(finer.effective_epsilon() - finer.nominal_epsilon(),
            mech.effective_epsilon() - mech.nominal_epsilon());
}

TEST(DiscreteLaplace, EmpiricalTailHolds) {
  const auto mech = make_mech(50.0);
  rng::Engine e(4);
  const double r05 = mech.tail_radius(0.05);
  int beyond = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    if (geo::distance(mech.obfuscate_one(e, {0, 0}), {0, 0}) > r05) {
      ++beyond;
    }
  }
  // The snap-inflated bound is conservative; empirical tail <= 5%.
  EXPECT_LE(static_cast<double>(beyond) / kN, 0.05);
}

TEST(DiscreteLaplace, NameAndContract) {
  const auto mech = make_mech(50.0);
  EXPECT_NE(mech.name().find("discrete"), std::string::npos);
  EXPECT_EQ(mech.output_count(), 1u);
  rng::Engine e(5);
  EXPECT_EQ(mech.obfuscate(e, {0, 0}).size(), 1u);
}

TEST(DiscreteLaplace, DomainErrors) {
  EXPECT_THROW(DiscretePlanarLaplaceMechanism({std::log(4.0), 200.0}, 0.0,
                                              city_box()),
               util::InvalidArgument);
  // Spacing coarser than the protection radius is meaningless.
  EXPECT_THROW(DiscretePlanarLaplaceMechanism({std::log(4.0), 200.0}, 300.0,
                                              city_box()),
               util::InvalidArgument);
}

}  // namespace
}  // namespace privlocad::lppm
