// Unit tests for the util module: strings, CSV, validation, logging, timer.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"
#include "util/validation.hpp"

namespace privlocad::util {
namespace {

// ---------------------------------------------------------------- strings

TEST(Strings, SplitKeepsEmptyFields) {
  const auto fields = split("a,,b", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
}

TEST(Strings, SplitSingleField) {
  const auto fields = split("alone", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "alone");
}

TEST(Strings, SplitEmptyStringYieldsOneEmptyField) {
  const auto fields = split("", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(Strings, TrimStripsBothEnds) {
  EXPECT_EQ(trim("  x \t"), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, ParseDoubleAcceptsWhitespaceAndSign) {
  EXPECT_DOUBLE_EQ(parse_double(" 3.5 "), 3.5);
  EXPECT_DOUBLE_EQ(parse_double("-2e3"), -2000.0);
  EXPECT_DOUBLE_EQ(parse_double("0"), 0.0);
}

TEST(Strings, ParseDoubleRejectsGarbage) {
  EXPECT_THROW(parse_double("abc"), InvalidArgument);
  EXPECT_THROW(parse_double("1.5x"), InvalidArgument);
  EXPECT_THROW(parse_double(""), InvalidArgument);
}

TEST(Strings, ParseIntRoundTrip) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_THROW(parse_int("1.5"), InvalidArgument);
  EXPECT_THROW(parse_int("99999999999999999999"), InvalidArgument);
}

TEST(Strings, JoinWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"solo"}, ","), "solo");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, FormatDoubleRespectsDigits) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
}

// ------------------------------------------------------------------- CSV

TEST(Csv, ReadSimpleTable) {
  std::istringstream in("a,b\n1,2\n3,4\n");
  const CsvTable table = read_csv(in);
  ASSERT_EQ(table.header.size(), 2u);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[1][0], "3");
  EXPECT_EQ(table.column("b"), 1u);
}

TEST(Csv, SkipsBlankLinesAndCarriageReturns) {
  std::istringstream in("a,b\r\n\n1,2\r\n   \n3,4\n");
  const CsvTable table = read_csv(in);
  EXPECT_EQ(table.rows.size(), 2u);
}

TEST(Csv, RejectsRaggedRowWithLineNumber) {
  std::istringstream in("a,b\n1,2,3\n");
  try {
    read_csv(in);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Csv, RaggedRowIsATypedParseErrorCarryingTheLine) {
  std::istringstream in("a,b\n1,2\n3\n");
  try {
    read_csv(in);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kParseError);
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(Csv, MissingFileIsATypedIoError) {
  try {
    read_csv_file("/nonexistent/path.csv");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoError);
  }
}

TEST(Csv, UnknownColumnThrows) {
  std::istringstream in("a,b\n1,2\n");
  const CsvTable table = read_csv(in);
  EXPECT_THROW(table.column("zzz"), InvalidArgument);
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path.csv"), std::runtime_error);
}

TEST(Csv, WriterRoundTripsThroughReader) {
  std::ostringstream out;
  CsvWriter writer(out, {"x", "y"});
  writer.write_row({"1.5", "2.5"});
  writer.write_row({"3", "4"});

  std::istringstream in(out.str());
  const CsvTable table = read_csv(in);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0][1], "2.5");
}

TEST(Csv, WriterRejectsWrongWidth) {
  std::ostringstream out;
  CsvWriter writer(out, {"x", "y"});
  EXPECT_THROW(writer.write_row({"only-one"}), InvalidArgument);
}

TEST(Csv, WriterRejectsEmptyHeader) {
  std::ostringstream out;
  EXPECT_THROW(CsvWriter(out, {}), InvalidArgument);
}

TEST(Csv, QuotedFieldsMayContainCommas) {
  // Regression: the reader used to split on every comma, so a quoted
  // "lat,lon" pair silently became two fields and shifted the row.
  std::istringstream in("place,coords\nhome,\"47.37,8.54\"\n");
  const CsvTable table = read_csv(in);
  ASSERT_EQ(table.rows.size(), 1u);
  ASSERT_EQ(table.rows[0].size(), 2u);
  EXPECT_EQ(table.rows[0][1], "47.37,8.54");
}

TEST(Csv, DoubledQuoteInsideQuotedFieldIsLiteral) {
  std::istringstream in("a,b\n\"say \"\"hi\"\"\",2\n");
  const CsvTable table = read_csv(in);
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "say \"hi\"");
}

TEST(Csv, EmptyQuotedFieldAndTrailingComma) {
  std::istringstream in("a,b,c\n\"\",x,\n");
  const CsvTable table = read_csv(in);
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "");
  EXPECT_EQ(table.rows[0][2], "");
}

TEST(Csv, UnterminatedQuoteNamesTheLine) {
  std::istringstream in("a,b\n\"oops,2\n");
  try {
    read_csv(in);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos);
    EXPECT_NE(what.find("unterminated"), std::string::npos);
  }
}

TEST(Csv, GarbageAfterClosingQuoteThrows) {
  std::istringstream in("a,b\n\"x\"y,2\n");
  EXPECT_THROW(read_csv(in), InvalidArgument);
}

TEST(Csv, StrayQuoteInUnquotedFieldThrows) {
  std::istringstream in("a,b\n1,2\"3\n");
  EXPECT_THROW(read_csv(in), InvalidArgument);
}

TEST(Csv, WriterQuotesAndRoundTripsSpecialFields) {
  std::ostringstream out;
  CsvWriter writer(out, {"name", "note"});
  writer.write_row({"a,b", "say \"hi\""});
  writer.write_row({"plain", ""});

  std::istringstream in(out.str());
  const CsvTable table = read_csv(in);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0][0], "a,b");
  EXPECT_EQ(table.rows[0][1], "say \"hi\"");
  EXPECT_EQ(table.rows[1][0], "plain");
}

TEST(Csv, WriterRejectsEmbeddedNewlines) {
  std::ostringstream out;
  CsvWriter writer(out, {"x"});
  EXPECT_THROW(writer.write_row({"two\nlines"}), InvalidArgument);
  EXPECT_THROW(writer.write_row({"cr\rhere"}), InvalidArgument);
}

// ------------------------------------------------------------- validation

TEST(Validation, RequirePositive) {
  EXPECT_NO_THROW(require_positive(0.1, "p"));
  EXPECT_THROW(require_positive(0.0, "p"), InvalidArgument);
  EXPECT_THROW(require_positive(-1.0, "p"), InvalidArgument);
  EXPECT_THROW(require_positive(std::nan(""), "p"), InvalidArgument);
}

TEST(Validation, RequireNonNegative) {
  EXPECT_NO_THROW(require_non_negative(0.0, "p"));
  EXPECT_THROW(require_non_negative(-0.1, "p"), InvalidArgument);
}

TEST(Validation, RequireUnitOpen) {
  EXPECT_NO_THROW(require_unit_open(0.5, "p"));
  EXPECT_THROW(require_unit_open(0.0, "p"), InvalidArgument);
  EXPECT_THROW(require_unit_open(1.0, "p"), InvalidArgument);
}

TEST(Validation, MessagesNameTheParameter) {
  try {
    require_positive(-2.0, "epsilon");
    FAIL();
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("epsilon"), std::string::npos);
  }
}

// ---------------------------------------------------------------- logging

TEST(Logging, ThresholdFiltersLowerLevels) {
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Emission itself is side-effect-only; just exercise the call paths.
  log_debug("dropped");
  log_error("emitted");
  set_log_level(LogLevel::kInfo);
}

// ------------------------------------------------------------------ timer

TEST(Timer, ElapsedIsMonotonicNonNegative) {
  Timer timer;
  const double a = timer.elapsed_seconds();
  const double b = timer.elapsed_seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  EXPECT_NEAR(timer.elapsed_millis(), timer.elapsed_seconds() * 1e3, 50.0);
}

TEST(Timer, ResetRestartsClock) {
  Timer timer;
  timer.reset();
  EXPECT_LT(timer.elapsed_seconds(), 1.0);
}

}  // namespace
}  // namespace privlocad::util
