// Tests for the scenario driver.
#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "util/validation.hpp"

namespace privlocad::core {
namespace {

SimulationConfig small_config() {
  SimulationConfig c;
  c.user_count = 15;
  c.advertiser_count = 300;
  c.population.min_check_ins = 100;
  c.population.max_check_ins = 300;
  c.edge.top_params.radius_m = 500.0;
  c.edge.top_params.epsilon = 1.0;
  c.edge.top_params.delta = 0.01;
  c.edge.top_params.n = 10;
  c.edge.management.window_seconds = 90 * trace::kSecondsPerDay;
  return c;
}

TEST(Simulation, RunsEndToEndAndAccountsEveryRequest) {
  const SimulationResult result = run_simulation(small_config());
  EXPECT_EQ(result.users, 15u);
  EXPECT_GT(result.live_requests, 0u);
  // Telemetry covers exactly the live requests (history import does not
  // call report_location).
  EXPECT_EQ(result.telemetry.requests, result.live_requests);
  EXPECT_EQ(result.telemetry.top_reports + result.telemetry.nomadic_reports,
            result.live_requests);
  EXPECT_LE(result.ads_delivered_per_request,
            result.ads_matched_per_request);
}

TEST(Simulation, DeterministicForFixedSeed) {
  const SimulationResult a = run_simulation(small_config());
  const SimulationResult b = run_simulation(small_config());
  EXPECT_EQ(a.live_requests, b.live_requests);
  EXPECT_DOUBLE_EQ(a.top_report_ratio, b.top_report_ratio);
  EXPECT_DOUBLE_EQ(a.attack_rates.rate(0, 0), b.attack_rates.rate(0, 0));
}

TEST(Simulation, SeedChangesTraffic) {
  SimulationConfig other = small_config();
  other.seed = 999;
  const SimulationResult a = run_simulation(small_config());
  const SimulationResult b = run_simulation(other);
  // Same population parent is derived from the seed, so traffic differs.
  EXPECT_NE(a.live_requests, b.live_requests);
}

TEST(Simulation, DefenceHoldsOnSmallPopulation) {
  SimulationConfig c = small_config();
  c.user_count = 30;
  const SimulationResult result = run_simulation(c);
  // The longitudinal attack against the real system must stay far from
  // the one-time-geo-IND regime (>90% recovery within 200 m).
  EXPECT_LT(result.attack_rates.rate(0, 0), 0.2);
}

TEST(Simulation, MostTrafficServedFromPermanentCandidates) {
  const SimulationResult result = run_simulation(small_config());
  EXPECT_GT(result.top_report_ratio, 0.5);
}

TEST(Simulation, InvalidConfigRejected) {
  SimulationConfig c = small_config();
  c.user_count = 0;
  EXPECT_THROW(run_simulation(c), util::InvalidArgument);
  c = small_config();
  c.history_fraction = 1.0;
  EXPECT_THROW(run_simulation(c), util::InvalidArgument);
  c = small_config();
  c.attack_thresholds_m = {};
  EXPECT_THROW(run_simulation(c), util::InvalidArgument);
}

}  // namespace
}  // namespace privlocad::core
