// Tests for the privacy accountant: the quantitative version of the
// paper's Section III composition argument.
#include <gtest/gtest.h>

#include <cmath>

#include "lppm/accountant.hpp"
#include "util/validation.hpp"

namespace privlocad::lppm {
namespace {

TEST(Accountant, UnknownUserHasZeroSpend) {
  const PrivacyAccountant acc;
  const PrivacySpend spend = acc.spend_for(42);
  EXPECT_EQ(spend.releases, 0u);
  EXPECT_DOUBLE_EQ(spend.basic_epsilon, 0.0);
  EXPECT_DOUBLE_EQ(spend.advanced_epsilon, 0.0);
}

TEST(Accountant, BasicCompositionIsLinear) {
  PrivacyAccountant acc;
  for (int i = 0; i < 100; ++i) acc.record(1, {0.1, 0.001});
  const PrivacySpend spend = acc.spend_for(1);
  EXPECT_EQ(spend.releases, 100u);
  EXPECT_NEAR(spend.basic_epsilon, 10.0, 1e-9);
  EXPECT_NEAR(spend.basic_delta, 0.1, 1e-9);
}

TEST(Accountant, AdvancedCompositionBeatsBasicForManySmallCharges) {
  // The whole point of Dwork-Roth Thm 3.20: sqrt(k) vs k growth.
  PrivacyAccountant acc(1e-6);
  for (int i = 0; i < 10000; ++i) acc.record(1, {0.01, 0.0});
  const PrivacySpend spend = acc.spend_for(1);
  EXPECT_NEAR(spend.basic_epsilon, 100.0, 1e-6);
  EXPECT_LT(spend.advanced_epsilon, spend.basic_epsilon);
  // eps*sqrt(2k ln(1/d')) = 0.01*sqrt(2*10^4*13.8) ~ 5.3, plus the
  // k*eps*(e^eps-1) ~ 1.0 term.
  EXPECT_NEAR(spend.advanced_epsilon,
              0.01 * std::sqrt(2.0e4 * std::log(1e6)) +
                  100.0 * (std::exp(0.01) - 1.0),
              1e-6);
  EXPECT_NEAR(spend.advanced_delta, 1e-6, 1e-12);
}

TEST(Accountant, AdvancedMatchesClosedFormHomogeneous) {
  PrivacyAccountant acc(0.001);
  const double eps = 0.5;
  const int k = 16;
  for (int i = 0; i < k; ++i) acc.record(7, {eps, 0.01});
  const PrivacySpend spend = acc.spend_for(7);
  const double expected =
      eps * std::sqrt(2.0 * k * std::log(1.0 / 0.001)) +
      k * eps * (std::exp(eps) - 1.0);
  EXPECT_NEAR(spend.advanced_epsilon, expected, 1e-9);
  EXPECT_NEAR(spend.advanced_delta, 16 * 0.01 + 0.001, 1e-12);
}

TEST(Accountant, UsersAreIndependent) {
  PrivacyAccountant acc;
  acc.record(1, {1.0, 0.0});
  acc.record(2, {2.0, 0.0});
  EXPECT_DOUBLE_EQ(acc.spend_for(1).basic_epsilon, 1.0);
  EXPECT_DOUBLE_EQ(acc.spend_for(2).basic_epsilon, 2.0);
  EXPECT_EQ(acc.tracked_users(), 2u);
}

TEST(Accountant, RecordAllChargesEveryUser) {
  PrivacyAccountant acc;
  acc.record_all({1, 2, 3}, {0.5, 0.0});
  for (const std::uint64_t id : {1u, 2u, 3u}) {
    EXPECT_DOUBLE_EQ(acc.spend_for(id).basic_epsilon, 0.5);
  }
}

TEST(Accountant, ExhaustionSemantics) {
  PrivacyAccountant acc;
  acc.record(1, {0.6, 0.0});
  EXPECT_FALSE(acc.exhausted(1, 1.0));
  acc.record(1, {0.6, 0.0});
  EXPECT_TRUE(acc.exhausted(1, 1.0));
  EXPECT_FALSE(acc.exhausted(99, 1.0));  // unknown user spent nothing
}

TEST(Accountant, TheLongitudinalStoryInNumbers) {
  // A one-time geo-IND user reporting home ~1000 times (the paper's 2-year
  // average) at l = ln4 exhausts any reasonable budget; an Edge-PrivLocAd
  // user pays once for the frozen table regardless of reports.
  PrivacyAccountant acc;
  const double per_report_eps = std::log(4.0);  // l (dimensionless level)
  for (int i = 0; i < 1000; ++i) acc.record(1, {per_report_eps, 0.0});
  acc.record(2, {1.0, 0.01});  // n-fold table generation, once

  EXPECT_GT(acc.spend_for(1).basic_epsilon, 1000.0);  // blown by 1000x
  EXPECT_DOUBLE_EQ(acc.spend_for(2).basic_epsilon, 1.0);
  EXPECT_TRUE(acc.exhausted(1, 10.0));
  EXPECT_FALSE(acc.exhausted(2, 10.0));
}

TEST(Accountant, DomainErrors) {
  EXPECT_THROW(PrivacyAccountant(0.0), util::InvalidArgument);
  EXPECT_THROW(PrivacyAccountant(1.0), util::InvalidArgument);
  PrivacyAccountant acc;
  EXPECT_THROW(acc.record(1, {0.0, 0.0}), util::InvalidArgument);
  EXPECT_THROW(acc.record(1, {1.0, 1.0}), util::InvalidArgument);
  EXPECT_THROW(acc.exhausted(1, 0.0), util::InvalidArgument);
}

}  // namespace
}  // namespace privlocad::lppm
