// End-to-end integration tests: the full Fig.-5 request flow through
// EdgePrivLocAd, and the attack-vs-defence loop played against the running
// system's own bid log (the exact adversary model of Section III-A).
#include <gtest/gtest.h>

#include <cmath>

#include "adnet/advertiser.hpp"
#include "attack/deobfuscation.hpp"
#include "attack/evaluation.hpp"
#include "core/system.hpp"
#include "lppm/planar_laplace.hpp"
#include "rng/engine.hpp"
#include "trace/synthetic.hpp"

namespace privlocad {
namespace {

core::EdgeConfig test_edge_config() {
  core::EdgeConfig c;
  c.top_params.radius_m = 500.0;
  c.top_params.epsilon = 1.0;
  c.top_params.delta = 0.01;
  c.top_params.n = 10;
  c.management.window_seconds = 30 * trace::kSecondsPerDay;
  c.management.min_top_frequency = 2;
  c.targeting_radius_m = 5000.0;
  return c;
}

std::vector<adnet::Advertiser> test_campaigns(std::uint64_t seed,
                                              std::size_t count = 300) {
  rng::Engine e(seed);
  return adnet::generate_campaigns(e, adnet::table1_presets()[3], count,
                                   40000.0, 10000.0);
}

TEST(Integration, FullRequestFlowDeliversFilteredAds) {
  core::EdgePrivLocAd system(test_edge_config().with_seed(7), test_campaigns(1));

  const geo::Point user_location{500.0, -300.0};
  const core::ServedAds served =
      system.on_lba_request(1, user_location, trace::kStudyStart);

  // The reported location left the trusted boundary and was logged.
  EXPECT_EQ(system.network().bid_log().total_requests(), 1u);
  // Every delivered ad is relevant to the TRUE location.
  for (const adnet::Ad& ad : served.delivered) {
    EXPECT_LE(geo::distance(ad.business_location, user_location), 5000.0);
  }
  EXPECT_LE(served.delivered.size(), served.matched_count);
}

TEST(Integration, AdNetworkNeverSeesTrueTopLocation) {
  core::EdgePrivLocAd system(test_edge_config().with_seed(8), test_campaigns(2));
  const geo::Point home{1000.0, 2000.0};

  // Build the profile through history import, then request repeatedly.
  trace::UserTrace history;
  history.user_id = 5;
  for (int i = 0; i < 60; ++i) {
    history.check_ins.push_back({home, trace::kStudyStart + i * 3600});
  }
  system.edge().import_history(5, history);

  for (int i = 0; i < 50; ++i) {
    system.on_lba_request(5, home,
                          trace::kStudyStart + 100 * trace::kSecondsPerDay +
                              i * 3600);
  }
  // None of the logged locations equals (or is near) the true home: with
  // sigma ~ 4.9 km the chance any of 10 candidates lands within 100 m is
  // negligible, and only those 10 candidates are ever reported.
  for (const geo::Point& p : system.network().bid_log().positions_for(5)) {
    EXPECT_GT(geo::distance(p, home), 100.0);
  }
}

TEST(Integration, LongitudinalAttackDefeatsOneTimeGeoIndButNotEdgeSystem) {
  // The paper's headline result, demonstrated end-to-end on one user.
  const geo::Point home{-2000.0, 1500.0};
  constexpr int kObservations = 800;

  // --- World A: user reports through one-time planar Laplace only.
  const lppm::PlanarLaplaceMechanism laplace({std::log(4.0), 200.0});
  rng::Engine e(11);
  std::vector<geo::Point> observed_laplace;
  for (int i = 0; i < kObservations; ++i) {
    observed_laplace.push_back(laplace.obfuscate_one(e, home));
  }
  attack::DeobfuscationConfig attack_config;
  attack_config.trim_radius_m = laplace.tail_radius(0.05);
  attack_config.connectivity_threshold_m = attack_config.trim_radius_m / 4.0;
  attack_config.top_n = 1;
  const auto inferred_a =
      attack::deobfuscate_top_locations(observed_laplace, attack_config);
  ASSERT_FALSE(inferred_a.empty());
  EXPECT_LT(geo::distance(inferred_a[0].location, home), 100.0)
      << "one-time geo-IND should be breakable";

  // --- World B: the same user behind Edge-PrivLocAd.
  core::EdgePrivLocAd system(test_edge_config().with_seed(13), test_campaigns(3));
  trace::UserTrace history;
  history.user_id = 1;
  for (int i = 0; i < 60; ++i) {
    history.check_ins.push_back({home, trace::kStudyStart + i * 3600});
  }
  system.edge().import_history(1, history);
  for (int i = 0; i < kObservations; ++i) {
    system.on_lba_request(
        1, home, trace::kStudyStart + 100 * trace::kSecondsPerDay + i * 600);
  }

  const auto observed_edge = system.network().bid_log().positions_for(1);
  ASSERT_EQ(observed_edge.size(), static_cast<std::size_t>(kObservations));
  attack::DeobfuscationConfig edge_attack = attack_config;
  edge_attack.trim_radius_m =
      system.edge().top_mechanism().tail_radius(0.05);
  edge_attack.connectivity_threshold_m = edge_attack.trim_radius_m / 4.0;
  const auto inferred_b =
      attack::deobfuscate_top_locations(observed_edge, edge_attack);
  ASSERT_FALSE(inferred_b.empty());
  EXPECT_GT(geo::distance(inferred_b[0].location, home), 500.0)
      << "permanent n-fold obfuscation must blunt the attack";
}

TEST(Integration, ProfileRebuildAcrossWindowsKeepsServingTopLocations) {
  core::EdgePrivLocAd system(test_edge_config().with_seed(13), test_campaigns(4));
  const geo::Point home{0.0, 0.0};

  // Live through 3 windows of organic requests (no import).
  std::size_t top_reports = 0;
  trace::Timestamp t = trace::kStudyStart;
  for (int day = 0; day < 95; ++day) {
    for (int req = 0; req < 3; ++req) {
      const core::ServedAds served = system.on_lba_request(2, home, t);
      if (served.reported.kind == core::ReportKind::kTopLocation) {
        ++top_reports;
      }
      t += 3600;
    }
    t += trace::kSecondsPerDay - 3 * 3600;
  }
  // After the first 30-day window the home must be recognized as top and
  // most subsequent reports come from the frozen candidates.
  EXPECT_GT(top_reports, 150u);
}

TEST(Integration, SyntheticPopulationThroughSystemMatchesReportKinds) {
  core::EdgeConfig config = test_edge_config();
  core::EdgePrivLocAd system(config.with_seed(14), test_campaigns(5));

  trace::SyntheticConfig synth;
  synth.min_check_ins = 150;
  synth.max_check_ins = 300;
  const rng::Engine parent(15);
  const auto users = trace::generate_population(parent, synth, 5);

  for (const trace::SyntheticUser& user : users) {
    // Import the first year as history; replay the rest live.
    const trace::Timestamp split =
        trace::kStudyStart + 365 * trace::kSecondsPerDay;
    system.edge().import_history(
        user.trace.user_id,
        trace::slice_by_time(user.trace, trace::kStudyStart, split));
    for (const trace::CheckIn& c : user.trace.check_ins) {
      if (c.time >= split) {
        system.on_lba_request(user.trace.user_id, c.position, c.time);
      }
    }
  }
  // The system served everyone without error and logged every live request.
  EXPECT_EQ(system.network().bid_log().user_count(), users.size());
}

}  // namespace
}  // namespace privlocad
