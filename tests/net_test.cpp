// Tests for the edge_serverd serving surface: wire framing, bounded
// admission, the open-loop load models, loopback end-to-end serving,
// deterministic shedding under a full queue, the queue-delay vs
// service-time latency split, and the fail-private contract ON THE WIRE
// under injected faults and under overload.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/edge_device.hpp"
#include "core/telemetry.hpp"
#include "fault/fault.hpp"
#include "net/admission.hpp"
#include "net/client.hpp"
#include "net/load_model.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "trace/check_in.hpp"

namespace privlocad {
namespace {

core::EdgeConfig small_edge_config() {
  core::EdgeConfig c;
  c.top_params.radius_m = 500.0;
  c.top_params.epsilon = 1.0;
  c.top_params.delta = 0.01;
  c.top_params.n = 10;
  c.management.window_seconds = 1000;
  c.shards = 2;
  return c;
}

/// Every server in this file goes through the Result factory: a test
/// that trips a create() error reports the typed status, not a throw.
std::unique_ptr<net::EdgeServer> make_server(
    core::EdgeConfig edge_config, net::ServerConfig server_config = {}) {
  util::Result<std::unique_ptr<net::EdgeServer>> created =
      net::EdgeServer::create(std::move(edge_config), server_config);
  EXPECT_TRUE(created.ok()) << created.status().to_string();
  return created.ok() ? std::move(created.value()) : nullptr;
}

net::ServeRequestFrame request_frame(std::uint64_t id, std::uint64_t user,
                                     double x, double y) {
  net::ServeRequestFrame request;
  request.request_id = id;
  request.user_id = user;
  request.x = x;
  request.y = y;
  request.time = trace::kStudyStart + static_cast<std::int64_t>(id);
  return request;
}

// ------------------------------------------------------------------ wire

TEST(Wire, RequestRoundTripsThroughEncodeDecode) {
  std::vector<std::uint8_t> bytes;
  const net::ServeRequestFrame sent = request_frame(7, 42, 123.5, -9.25);
  net::append_request(bytes, sent);
  ASSERT_EQ(bytes.size(),
            net::kFrameHeaderBytes + net::kServeRequestBodyBytes);

  net::Frame frame;
  std::size_t consumed = 0;
  ASSERT_TRUE(
      net::try_decode(bytes.data(), bytes.size(), frame, consumed).ok());
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(frame.type, net::FrameType::kServeRequest);
  EXPECT_EQ(frame.request.request_id, 7u);
  EXPECT_EQ(frame.request.user_id, 42u);
  EXPECT_DOUBLE_EQ(frame.request.x, 123.5);
  EXPECT_DOUBLE_EQ(frame.request.y, -9.25);
  EXPECT_EQ(frame.request.time, sent.time);
}

TEST(Wire, DecoderHandlesArbitrarySplitPoints) {
  std::vector<std::uint8_t> bytes;
  net::append_request(bytes, request_frame(1, 2, 3.0, 4.0));
  net::append_request(bytes, request_frame(5, 6, 7.0, 8.0));

  // Feed the stream one byte at a time; exactly two frames must emerge.
  std::vector<std::uint8_t> window;
  std::vector<std::uint64_t> ids;
  for (const std::uint8_t byte : bytes) {
    window.push_back(byte);
    net::Frame frame;
    std::size_t consumed = 0;
    ASSERT_TRUE(
        net::try_decode(window.data(), window.size(), frame, consumed)
            .ok());
    if (consumed > 0) {
      ASSERT_EQ(consumed, window.size());  // frame ends exactly here
      ids.push_back(frame.request.request_id);
      window.clear();
    }
  }
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 5}));
}

TEST(Wire, BadMagicAndBadTypeAreTypedParseErrors) {
  std::vector<std::uint8_t> bytes;
  net::append_request(bytes, request_frame(1, 2, 3.0, 4.0));
  net::Frame frame;
  std::size_t consumed = 0;

  std::vector<std::uint8_t> bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(net::try_decode(bad_magic.data(), bad_magic.size(), frame,
                            consumed)
                .code(),
            util::ErrorCode::kParseError);

  std::vector<std::uint8_t> bad_type = bytes;
  bad_type[3] = 99;
  EXPECT_EQ(net::try_decode(bad_type.data(), bad_type.size(), frame,
                            consumed)
                .code(),
            util::ErrorCode::kParseError);
}

TEST(Wire, NonReleasedResponseNeverCarriesCoordinates) {
  // Even a buggy caller that leaves raw coordinates in a dropped
  // response's struct cannot push them onto the wire.
  net::ServeResponseFrame response;
  response.request_id = 1;
  response.released = 0;
  response.x = 777.0;  // must not survive serialization
  response.y = 888.0;
  std::vector<std::uint8_t> bytes;
  net::append_response(bytes, response);

  net::Frame frame;
  std::size_t consumed = 0;
  ASSERT_TRUE(
      net::try_decode(bytes.data(), bytes.size(), frame, consumed).ok());
  EXPECT_EQ(frame.response.released, 0);
  EXPECT_DOUBLE_EQ(frame.response.x, 0.0);
  EXPECT_DOUBLE_EQ(frame.response.y, 0.0);
}

// ------------------------------------------------------------- admission

TEST(Admission, ShedsDeterministicallyAtCapacity) {
  net::BoundedRequestQueue queue(3);
  net::PendingRequest pending;
  EXPECT_TRUE(queue.try_push(pending));
  EXPECT_TRUE(queue.try_push(pending));
  EXPECT_TRUE(queue.try_push(pending));
  EXPECT_FALSE(queue.try_push(pending));  // full: shed, not block
  EXPECT_EQ(queue.size(), 3u);

  net::PendingRequest out;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_TRUE(queue.try_push(pending));  // room again
}

TEST(Admission, CloseDrainsBacklogThenUnblocks) {
  net::BoundedRequestQueue queue(8);
  net::PendingRequest pending;
  pending.conn_id = 17;
  ASSERT_TRUE(queue.try_push(pending));
  queue.close();
  EXPECT_FALSE(queue.try_push(pending));  // closed refuses new work

  net::PendingRequest out;
  EXPECT_TRUE(queue.pop(out));  // backlog still drains
  EXPECT_EQ(out.conn_id, 17u);
  EXPECT_FALSE(queue.pop(out));  // drained + closed
}

TEST(Admission, PolicyNamesRoundTripAndRejectGarbage) {
  EXPECT_STREQ(
      net::admission_policy_name(net::AdmissionPolicy::kQueueCapacity),
      "queue_capacity");
  EXPECT_STREQ(
      net::admission_policy_name(net::AdmissionPolicy::kLatencyBudget),
      "latency_budget");
  EXPECT_EQ(net::parse_admission_policy("queue_capacity").value(),
            net::AdmissionPolicy::kQueueCapacity);
  EXPECT_EQ(net::parse_admission_policy("latency_budget").value(),
            net::AdmissionPolicy::kLatencyBudget);
  EXPECT_EQ(net::parse_admission_policy("lifo").status().code(),
            util::ErrorCode::kParseError);
  EXPECT_EQ(net::parse_admission_policy(nullptr).status().code(),
            util::ErrorCode::kParseError);
}

TEST(Admission, LatencyBudgetShedsOnProjectedDelayAtPush) {
  // Capacity is generous; the budget is the binding constraint. Feed the
  // EWMA until it converges to ~1000us per queued item, then: an empty
  // queue projects 0 (admit), one queued item projects ~1000us > 500us
  // budget (shed). The decision is entirely at push time.
  net::BoundedRequestQueue queue(100,
                                 net::AdmissionPolicy::kLatencyBudget,
                                 /*latency_budget_us=*/500);
  for (int i = 0; i < 64; ++i) queue.observe_queue_delay_us(1000.0, 1);
  EXPECT_NEAR(queue.ewma_item_delay_us(), 1000.0, 10.0);

  net::PendingRequest pending;
  EXPECT_TRUE(queue.try_push(pending));   // depth 0: projected 0
  EXPECT_GT(queue.projected_delay_us(), 500.0);
  EXPECT_FALSE(queue.try_push(pending));  // depth 1: ~1000us > budget

  net::PendingRequest out;
  ASSERT_TRUE(queue.pop(out));
  EXPECT_EQ(out.depth_at_admit, 0u);
  EXPECT_TRUE(queue.try_push(pending));   // drained: projected 0 again
}

TEST(Admission, LatencyBudgetKeepsCapacityAsHardBackstop) {
  // A huge budget never lets the queue grow past its capacity bound.
  net::BoundedRequestQueue queue(2, net::AdmissionPolicy::kLatencyBudget,
                                 /*latency_budget_us=*/1u << 30);
  net::PendingRequest pending;
  EXPECT_TRUE(queue.try_push(pending));
  EXPECT_TRUE(queue.try_push(pending));
  EXPECT_FALSE(queue.try_push(pending));  // capacity, not budget
}

TEST(Admission, LatencyBudgetWithNoObservationsAdmitsFreely) {
  // Before any worker feedback the projection is 0: an idle box must not
  // shed its first requests.
  net::BoundedRequestQueue queue(8, net::AdmissionPolicy::kLatencyBudget,
                                 /*latency_budget_us=*/1);
  net::PendingRequest pending;
  EXPECT_TRUE(queue.try_push(pending));
  EXPECT_TRUE(queue.try_push(pending));
  EXPECT_DOUBLE_EQ(queue.ewma_item_delay_us(), 0.0);
}

// ------------------------------------------------------------ load model

TEST(LoadModel, PlansAreDeterministicInTheSeed) {
  net::LoadPlanConfig config;
  config.target_rps = 500.0;
  config.duration_s = 0.5;
  config.users = 50;
  config.seed = 9;
  const std::vector<net::TimedRequest> a =
      net::build_open_loop_plan(config);
  const std::vector<net::TimedRequest> b =
      net::build_open_loop_plan(config);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at_s, b[i].at_s);
    EXPECT_EQ(a[i].request.user_id, b[i].request.user_id);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].request.x),
              std::bit_cast<std::uint64_t>(b[i].request.x));
  }
  config.seed = 10;
  const std::vector<net::TimedRequest> c =
      net::build_open_loop_plan(config);
  ASSERT_FALSE(c.empty());
  EXPECT_NE(a.front().at_s, c.front().at_s);
}

TEST(LoadModel, PoissonPlanHitsTheTargetRateAndIsSorted) {
  net::LoadPlanConfig config;
  config.target_rps = 2000.0;
  config.duration_s = 4.0;
  config.users = 100;
  const std::vector<net::TimedRequest> plan =
      net::build_open_loop_plan(config);
  const double achieved =
      static_cast<double>(plan.size()) / config.duration_s;
  EXPECT_NEAR(achieved, config.target_rps, config.target_rps * 0.10);
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_LE(plan[i - 1].at_s, plan[i].at_s);
    EXPECT_LT(plan[i].at_s, config.duration_s);
  }
}

TEST(LoadModel, BurstyPlanKeepsTheMeanRate) {
  net::LoadPlanConfig config;
  config.target_rps = 2000.0;
  config.duration_s = 4.0;
  config.process = net::ArrivalProcess::kBursty;
  config.users = 100;
  const std::vector<net::TimedRequest> plan =
      net::build_open_loop_plan(config);
  const double achieved =
      static_cast<double>(plan.size()) / config.duration_s;
  EXPECT_NEAR(achieved, config.target_rps, config.target_rps * 0.10);

  // The on-phase must be visibly denser than the off-phase.
  std::size_t on = 0;
  std::size_t off = 0;
  for (const net::TimedRequest& timed : plan) {
    const double phase = std::fmod(timed.at_s, config.burst_period_s);
    if (phase < config.burst_fraction * config.burst_period_s) {
      ++on;
    } else {
      ++off;
    }
  }
  // On-phase owns burst_fraction of the time but far more of the load.
  const double on_share =
      static_cast<double>(on) / static_cast<double>(on + off);
  EXPECT_GT(on_share, config.burst_fraction * 2.0);
}

TEST(LoadModel, DiurnalPlanIsDeterministicInTheSeed) {
  net::LoadPlanConfig config;
  config.target_rps = 1500.0;
  config.duration_s = 2.0;
  config.process = net::ArrivalProcess::kDiurnal;
  config.diurnal_period_s = 0.5;
  config.users = 64;
  config.seed = 21;
  const std::vector<net::TimedRequest> a =
      net::build_open_loop_plan(config);
  const std::vector<net::TimedRequest> b =
      net::build_open_loop_plan(config);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].at_s),
              std::bit_cast<std::uint64_t>(b[i].at_s));
    EXPECT_EQ(a[i].request.user_id, b[i].request.user_id);
  }
}

TEST(LoadModel, DiurnalEnvelopeIntegratesToTheTargetAnalytically) {
  // The mean-rate preservation property, checked on the envelope itself
  // (no sampling noise): the integral of diurnal_rate_rps over the run
  // must equal target_rps * duration_s even when the run covers a
  // FRACTIONAL number of cycles at a nonzero phase.
  net::LoadPlanConfig config;
  config.target_rps = 2000.0;
  config.duration_s = 1.3;  // 2.6 cycles: partial-cycle compensation
  config.process = net::ArrivalProcess::kDiurnal;
  config.diurnal_period_s = 0.5;
  config.diurnal_amplitude = 0.8;
  config.diurnal_phase = 0.25;
  const std::size_t steps = 200000;
  const double dt = config.duration_s / static_cast<double>(steps);
  double integral = 0.0;
  for (std::size_t i = 0; i < steps; ++i) {
    const double t = (static_cast<double>(i) + 0.5) * dt;
    integral += net::diurnal_rate_rps(config, t) * dt;
  }
  EXPECT_NEAR(integral, config.target_rps * config.duration_s,
              config.target_rps * config.duration_s * 1e-4);
}

TEST(LoadModel, DiurnalPlanKeepsTheMeanRateAndShowsPeaks) {
  net::LoadPlanConfig config;
  config.target_rps = 2000.0;
  config.duration_s = 4.0;
  config.process = net::ArrivalProcess::kDiurnal;
  config.diurnal_period_s = 1.0;
  config.diurnal_amplitude = 0.8;
  config.users = 100;
  const std::vector<net::TimedRequest> plan =
      net::build_open_loop_plan(config);
  const double achieved =
      static_cast<double>(plan.size()) / config.duration_s;
  EXPECT_NEAR(achieved, config.target_rps, config.target_rps * 0.10);
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_LE(plan[i - 1].at_s, plan[i].at_s);
  }

  // The rising half-cycle (sin > 0) must be visibly denser than the
  // falling half: with amplitude 0.8 the split is (1 + 2*0.8/pi)/2 vs
  // the rest, ~0.75/0.25.
  std::size_t peak_half = 0;
  for (const net::TimedRequest& timed : plan) {
    const double phase =
        std::fmod(timed.at_s, config.diurnal_period_s) /
        config.diurnal_period_s;
    if (phase < 0.5) ++peak_half;
  }
  const double peak_share =
      static_cast<double>(peak_half) / static_cast<double>(plan.size());
  EXPECT_GT(peak_share, 0.65);
}

TEST(LoadModel, ZipfSkewsTowardLowRanks) {
  const net::ZipfSampler zipf(1000, 1.1);
  rng::Engine engine(4);
  std::size_t top10 = 0;
  const std::size_t draws = 20000;
  for (std::size_t i = 0; i < draws; ++i) {
    if (zipf.sample(engine) < 10) ++top10;
  }
  // Uniform would put ~1% in the top 10; Zipf(1.1) puts a large share.
  EXPECT_GT(top10, draws / 5);
}

// ------------------------------------------- server config + create()

TEST(ServerConfig, FluentCopiesComposeWithoutMutatingTheSource) {
  const net::ServerConfig base;
  const net::ServerConfig tuned =
      base.with_workers(7)
          .with_queue_capacity(99)
          .with_backend(net::IoBackendKind::kEpoll)
          .with_admission(net::AdmissionPolicy::kLatencyBudget)
          .with_latency_budget_us(1234)
          .with_service_delay_us(55)
          .with_max_outbound_bytes(1 << 16)
          .with_port(8080);
  EXPECT_EQ(tuned.workers, 7u);
  EXPECT_EQ(tuned.queue_capacity, 99u);
  EXPECT_EQ(tuned.backend, net::IoBackendKind::kEpoll);
  EXPECT_EQ(tuned.admission, net::AdmissionPolicy::kLatencyBudget);
  EXPECT_EQ(tuned.latency_budget_us, 1234u);
  EXPECT_EQ(tuned.service_delay_us, 55u);
  EXPECT_EQ(tuned.max_outbound_bytes, std::size_t{1} << 16);
  EXPECT_EQ(tuned.port, 8080u);
  // The source is untouched.
  EXPECT_EQ(base.workers, 2u);
  EXPECT_EQ(base.backend, net::IoBackendKind::kAuto);
  EXPECT_EQ(base.port, 0u);
  EXPECT_TRUE(tuned.validated().ok());
}

TEST(ServerConfig, ValidatedNamesEachBadField) {
  const net::ServerConfig good;
  EXPECT_TRUE(good.validated().ok());

  const util::Status bad_port = good.with_port(70000).validated();
  EXPECT_EQ(bad_port.code(), util::ErrorCode::kInvalidArgument);
  EXPECT_NE(bad_port.message().find("port"), std::string::npos);

  EXPECT_EQ(good.with_workers(0).validated().code(),
            util::ErrorCode::kInvalidArgument);
  EXPECT_EQ(good.with_queue_capacity(0).validated().code(),
            util::ErrorCode::kInvalidArgument);
  EXPECT_EQ(good.with_max_outbound_bytes(8).validated().code(),
            util::ErrorCode::kInvalidArgument);
  EXPECT_EQ(good.with_admission(net::AdmissionPolicy::kLatencyBudget)
                .with_latency_budget_us(0)
                .validated()
                .code(),
            util::ErrorCode::kInvalidArgument);
}

TEST(IoBackendSelection, NamesRoundTripAndRejectGarbage) {
  EXPECT_STREQ(net::io_backend_kind_name(net::IoBackendKind::kAuto),
               "auto");
  EXPECT_STREQ(net::io_backend_kind_name(net::IoBackendKind::kEpoll),
               "epoll");
  EXPECT_STREQ(net::io_backend_kind_name(net::IoBackendKind::kIoUring),
               "io_uring");
  EXPECT_EQ(net::parse_io_backend_kind("epoll").value(),
            net::IoBackendKind::kEpoll);
  EXPECT_EQ(net::parse_io_backend_kind("io_uring").value(),
            net::IoBackendKind::kIoUring);
  EXPECT_EQ(net::parse_io_backend_kind("auto").value(),
            net::IoBackendKind::kAuto);
  EXPECT_EQ(net::parse_io_backend_kind(nullptr).value(),
            net::IoBackendKind::kAuto);  // unset env means auto
  EXPECT_EQ(net::parse_io_backend_kind("uring").status().code(),
            util::ErrorCode::kParseError);
}

TEST(EdgeServer, CreateRejectsBadConfigWithTypedStatus) {
  util::Result<std::unique_ptr<net::EdgeServer>> bad_port =
      net::EdgeServer::create(small_edge_config(),
                              net::ServerConfig{}.with_port(65536));
  ASSERT_FALSE(bad_port.ok());
  EXPECT_EQ(bad_port.status().code(), util::ErrorCode::kInvalidArgument);

  util::Result<std::unique_ptr<net::EdgeServer>> bad_workers =
      net::EdgeServer::create(small_edge_config(),
                              net::ServerConfig{}.with_workers(0));
  ASSERT_FALSE(bad_workers.ok());
  EXPECT_EQ(bad_workers.status().code(),
            util::ErrorCode::kInvalidArgument);
}

TEST(EdgeServer, CreateReportsBindFailureAsTypedStatus) {
  // Occupy an ephemeral port, then ask a second server for the same one.
  const std::unique_ptr<net::EdgeServer> first =
      make_server(small_edge_config());
  ASSERT_NE(first, nullptr);
  util::Result<std::unique_ptr<net::EdgeServer>> second =
      net::EdgeServer::create(
          small_edge_config(),
          net::ServerConfig{}.with_port(first->port()));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), util::ErrorCode::kIoError);
}

TEST(EdgeServer, ExplicitIoUringRequestNeverSilentlyDowngrades) {
  util::Result<std::unique_ptr<net::EdgeServer>> created =
      net::EdgeServer::create(
          small_edge_config(),
          net::ServerConfig{}.with_backend(net::IoBackendKind::kIoUring));
  if (net::io_uring_available()) {
    // Satisfiable: the explicit request must land on io_uring exactly.
    ASSERT_TRUE(created.ok()) << created.status().to_string();
    EXPECT_EQ(created.value()->backend_kind(),
              net::IoBackendKind::kIoUring);
  } else {
    // Unsatisfiable: a LOUD typed error, never an epoll downgrade.
    ASSERT_FALSE(created.ok());
    EXPECT_EQ(created.status().code(),
              util::ErrorCode::kFailedPrecondition);
    EXPECT_NE(created.status().message().find("io_uring"),
              std::string::npos);
  }
}

TEST(EdgeServer, StartTwiceIsATypedError) {
  const std::unique_ptr<net::EdgeServer> server =
      make_server(small_edge_config());
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(server->start().ok());
  EXPECT_EQ(server->start().code(), util::ErrorCode::kFailedPrecondition);
  server->stop();
}

// ------------------------------------------------------- loopback serving

TEST(EdgeServer, ServesOverLoopbackAndNeverEchoesRawCoordinates) {
  net::ServerConfig server_config;
  server_config.workers = 2;
  const std::unique_ptr<net::EdgeServer> server =
      make_server(small_edge_config(), server_config);
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(server->start().ok());

  util::Result<net::BlockingClient> client =
      net::BlockingClient::connect(server->port());
  ASSERT_TRUE(client.ok());
  for (std::uint64_t i = 0; i < 32; ++i) {
    const net::ServeRequestFrame request =
        request_frame(i, 1 + (i % 4), 1000.0, 2000.0);
    util::Result<net::ServeResponseFrame> response =
        client->call(request);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->request_id, i);
    ASSERT_EQ(response->released, 1);  // no faults: everything serves
    // Obfuscated, not echoed.
    EXPECT_FALSE(response->x == request.x && response->y == request.y);
  }
  EXPECT_EQ(server->metrics().counter_value(net::net_metrics::kRequests),
            32u);
  EXPECT_EQ(server->metrics().counter_value(net::net_metrics::kResponses),
            32u);
  server->stop();
}

TEST(EdgeServer, PipelinedRequestsAllComeBackMatched) {
  net::ServerConfig server_config;
  server_config.workers = 2;
  const std::unique_ptr<net::EdgeServer> server =
      make_server(small_edge_config(), server_config);
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(server->start().ok());

  util::Result<net::BlockingClient> client =
      net::BlockingClient::connect(server->port());
  ASSERT_TRUE(client.ok());
  const std::uint64_t n = 64;
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(client->send(request_frame(i, 1 + (i % 8), 500.0, 500.0))
                    .ok());
  }
  std::vector<bool> seen(n, false);
  for (std::uint64_t i = 0; i < n; ++i) {
    util::Result<net::ServeResponseFrame> response = client->receive();
    ASSERT_TRUE(response.ok());
    ASSERT_LT(response->request_id, n);
    EXPECT_FALSE(seen[response->request_id]);  // each id exactly once
    seen[response->request_id] = true;
  }
  server->stop();
}

TEST(EdgeServer, StopIsCleanAndIdempotent) {
  const std::unique_ptr<net::EdgeServer> server =
      make_server(small_edge_config());
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(server->start().ok());
  server->stop();
  server->stop();  // second stop is a no-op
}

// ------------------------------------------------- shedding and the split

TEST(EdgeServer, FullQueueShedsAsDegradedDroppedAndCountsIt) {
  // One slow worker + a tiny queue: a pipelined burst must overflow
  // admission deterministically.
  net::ServerConfig server_config;
  server_config.workers = 1;
  server_config.queue_capacity = 4;
  server_config.service_delay_us = 2000;
  const std::unique_ptr<net::EdgeServer> server =
      make_server(small_edge_config(), server_config);
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(server->start().ok());

  util::Result<net::BlockingClient> client =
      net::BlockingClient::connect(server->port());
  ASSERT_TRUE(client.ok());
  const std::uint64_t n = 64;
  for (std::uint64_t i = 0; i < n; ++i) {
    // Same user: one worker queue takes the whole burst.
    ASSERT_TRUE(client->send(request_frame(i, 1, 500.0, 500.0)).ok());
  }
  std::uint64_t served = 0;
  std::uint64_t shed = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    util::Result<net::ServeResponseFrame> response = client->receive();
    ASSERT_TRUE(response.ok());
    const auto outcome =
        static_cast<core::ServeOutcome>(response->outcome);
    if (outcome == core::ServeOutcome::kDegradedDropped) {
      ++shed;
      EXPECT_EQ(response->released, 0);
      EXPECT_EQ(static_cast<util::ErrorCode>(response->status_code),
                util::ErrorCode::kResourceExhausted);
      EXPECT_DOUBLE_EQ(response->x, 0.0);  // nothing leaves on a shed
      EXPECT_DOUBLE_EQ(response->y, 0.0);
    } else {
      ++served;
    }
  }
  EXPECT_EQ(served + shed, n);  // every request accounted for
  EXPECT_GT(shed, 0u);          // the burst really overflowed
  EXPECT_GT(served, 0u);        // and the queue really drained
  EXPECT_EQ(server->metrics().counter_value(net::net_metrics::kShed), shed);
  // Admission sheds land in the box-level fail-private taxonomy too.
  EXPECT_GE(server->metrics().counter_value(
                core::edge_metrics::kDegradedDropped),
            shed);
  server->stop();
}

TEST(EdgeServer, SplitsQueueDelayFromServiceTime) {
  net::ServerConfig server_config;
  server_config.workers = 1;
  server_config.queue_capacity = 256;
  server_config.service_delay_us = 1000;
  const std::unique_ptr<net::EdgeServer> server =
      make_server(small_edge_config(), server_config);
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(server->start().ok());

  util::Result<net::BlockingClient> client =
      net::BlockingClient::connect(server->port());
  ASSERT_TRUE(client.ok());
  const std::uint64_t n = 16;
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(client->send(request_frame(i, 1, 500.0, 500.0)).ok());
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(client->receive().ok());
  }
  const obs::LatencyHistogram& queue_delay =
      server->metrics().histogram(net::net_metrics::kQueueDelayUs);
  const obs::LatencyHistogram& service_time =
      server->metrics().histogram(net::net_metrics::kServiceTimeUs);
  EXPECT_EQ(queue_delay.count(), n);
  EXPECT_EQ(service_time.count(), n);
  // Every request sleeps 1ms in service, so the mean must reflect it.
  EXPECT_GE(service_time.mean(), 1000.0);
  // A pipelined burst into one worker queues: the LAST requests wait for
  // all earlier 1ms services, so mean queue delay well exceeds a single
  // service time.
  EXPECT_GE(queue_delay.mean(), 1000.0);
  server->stop();
}

// -------------------------------------------- fail private over the wire

TEST(EdgeServer, InjectedFaultsNeverLeakRawCoordinatesOnTheWire) {
  // Heavy unavailability at the serve site, no retries: many requests
  // degrade to dropped. The wire contract: dropped frames carry nothing.
  util::Result<fault::FaultPlan> plan = fault::FaultPlan::parse(
      "seed=5;serve:p=0.5,code=unavailable");
  ASSERT_TRUE(plan.ok());
  fault::FaultInjector injector(plan.value());

  core::EdgeConfig edge_config = small_edge_config();
  edge_config.faults = &injector;
  edge_config.retry.max_attempts = 1;  // no retries: faults degrade fast

  net::ServerConfig server_config;
  server_config.workers = 2;
  const std::unique_ptr<net::EdgeServer> server =
      make_server(edge_config, server_config);
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(server->start().ok());

  util::Result<net::BlockingClient> client =
      net::BlockingClient::connect(server->port());
  ASSERT_TRUE(client.ok());
  std::uint64_t dropped = 0;
  std::uint64_t released = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const net::ServeRequestFrame request =
        request_frame(i, 1 + (i % 8), 1000.0, 2000.0);
    util::Result<net::ServeResponseFrame> response =
        client->call(request);
    ASSERT_TRUE(response.ok());
    if (response->released == 0) {
      ++dropped;
      EXPECT_DOUBLE_EQ(response->x, 0.0);
      EXPECT_DOUBLE_EQ(response->y, 0.0);
    } else {
      ++released;
      EXPECT_FALSE(response->x == request.x && response->y == request.y);
    }
  }
  EXPECT_GT(dropped, 0u);   // the plan really fired
  EXPECT_GT(released, 0u);  // and service still flowed
  server->stop();
}

// ---------------------------------------------------- open-loop overload

TEST(OpenLoop, OverloadStaysBoundedAccountedAndLeakFree) {
  // Offered >> capacity: one slow worker, a small queue, a 4x-capacity
  // bursty plan. The server must answer or shed EVERY request, never
  // crash, and never leak a raw coordinate.
  net::ServerConfig server_config;
  server_config.workers = 1;
  server_config.queue_capacity = 16;
  server_config.service_delay_us = 500;
  const std::unique_ptr<net::EdgeServer> server =
      make_server(small_edge_config(), server_config);
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(server->start().ok());

  net::LoadPlanConfig plan_config;
  plan_config.target_rps = 4000.0;  // capacity is ~2000/s at 500us each
  plan_config.duration_s = 0.5;
  plan_config.process = net::ArrivalProcess::kBursty;
  plan_config.users = 64;
  plan_config.seed = 11;
  const std::vector<net::TimedRequest> plan =
      net::build_open_loop_plan(plan_config);
  ASSERT_FALSE(plan.empty());

  net::OpenLoopConfig loop_config;
  loop_config.port = server->port();
  loop_config.connections = 2;
  util::Result<net::OpenLoopStats> run =
      net::run_open_loop(loop_config, plan);
  ASSERT_TRUE(run.ok());
  const net::OpenLoopStats& stats = run.value();

  EXPECT_EQ(stats.sent, stats.offered);
  EXPECT_EQ(stats.responses + stats.missing, stats.sent);
  EXPECT_EQ(stats.missing, 0u);  // every admitted or shed answer arrived
  EXPECT_EQ(stats.raw_leaks, 0u);
  EXPECT_EQ(stats.wire_errors, 0u);
  EXPECT_GT(stats.degraded_dropped, 0u);  // overload really shed
  EXPECT_GT(stats.served, 0u);            // but service continued
  // The queue bound held: the backlog can never have exceeded capacity,
  // so queue delay is bounded by capacity * service time plus slack.
  // Service time is taken from the server's own measurement, not the
  // configured 500us: a loaded CI box stretches the worker's sleeps,
  // and the bound must stretch with them. An UNBOUNDED queue would
  // still blow through it -- its backlog is hundreds of requests deep,
  // not `queue_capacity`.
  const obs::LatencyHistogram& queue_delay =
      server->metrics().histogram(net::net_metrics::kQueueDelayUs);
  const obs::LatencyHistogram& service_time =
      server->metrics().histogram(net::net_metrics::kServiceTimeUs);
  const double effective_service_us =
      std::max(static_cast<double>(server_config.service_delay_us),
               service_time.quantile(0.99));
  EXPECT_LE(queue_delay.quantile(0.99),
            static_cast<double>(server_config.queue_capacity) *
                effective_service_us * 4.0);
  server->stop();
}

}  // namespace
}  // namespace privlocad
