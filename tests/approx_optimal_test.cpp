// Tests for the certified delta-spanner and the scalable approximate
// optimal geo-IND mechanism (spanner LP + revised simplex + window
// decomposition).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "lppm/optimal_mechanism.hpp"
#include "lppm/spanner.hpp"
#include "util/validation.hpp"

namespace privlocad {
namespace {

std::vector<geo::Point> square_grid(std::size_t side, double spacing) {
  std::vector<geo::Point> nodes;
  for (std::size_t r = 0; r < side; ++r) {
    for (std::size_t c = 0; c < side; ++c) {
      nodes.push_back({static_cast<double>(c) * spacing,
                       static_cast<double>(r) * spacing});
    }
  }
  return nodes;
}

/// Independent dilation check: Floyd-Warshall over the spanner edges.
double measured_dilation(const std::vector<geo::Point>& nodes,
                         const lppm::Spanner& spanner) {
  const std::size_t n = nodes.size();
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n * n, inf);
  for (std::size_t i = 0; i < n; ++i) dist[i * n + i] = 0.0;
  for (const lppm::SpannerEdge& e : spanner.edges()) {
    dist[e.a * n + e.b] = std::min(dist[e.a * n + e.b], e.length);
    dist[e.b * n + e.a] = std::min(dist[e.b * n + e.a], e.length);
  }
  for (std::size_t m = 0; m < n; ++m) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        dist[i * n + j] =
            std::min(dist[i * n + j], dist[i * n + m] + dist[m * n + j]);
      }
    }
  }
  double worst = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      worst = std::max(worst,
                       dist[i * n + j] / geo::distance(nodes[i], nodes[j]));
    }
  }
  return worst;
}

// ------------------------------------------------------------------ spanner

TEST(Spanner, CertifiedDilationHoldsOnGrids) {
  for (const std::size_t side : {2u, 4u, 6u}) {
    const auto nodes = square_grid(side, 250.0);
    const lppm::Spanner spanner = lppm::Spanner::build(nodes);
    EXPECT_LE(spanner.dilation(), spanner.target_dilation()) << side;
    // The reported dilation is the true all-pairs maximum.
    EXPECT_NEAR(spanner.dilation(), measured_dilation(nodes, spanner), 1e-12)
        << side;
    // A spanner is much sparser than the complete graph.
    const std::size_t pairs = nodes.size() * (nodes.size() - 1) / 2;
    if (side >= 4) {
      EXPECT_LT(spanner.edges().size(), pairs / 2) << side;
    }
  }
}

TEST(Spanner, TighterTargetAddsEdges) {
  const auto nodes = square_grid(5, 100.0);
  const auto loose = lppm::Spanner::build(nodes, {.target_dilation = 2.0});
  const auto tight = lppm::Spanner::build(nodes, {.target_dilation = 1.1});
  EXPECT_GE(tight.edges().size(), loose.edges().size());
  EXPECT_LE(tight.dilation(), 1.1);
  EXPECT_LE(loose.dilation(), 2.0);
}

TEST(Spanner, CertificationRepairsStarvedGreedyPass) {
  // A candidate radius below the node spacing starves the greedy pass of
  // every pair, so the certification sweep must add the repair edges
  // itself -- and still end below the target.
  const auto nodes = square_grid(3, 100.0);
  const lppm::Spanner spanner = lppm::Spanner::build(
      nodes, {.target_dilation = 1.5, .candidate_radius_factor = 0.5});
  EXPECT_LE(spanner.dilation(), 1.5);
  EXPECT_NEAR(spanner.dilation(), measured_dilation(nodes, spanner), 1e-12);
  EXPECT_GE(spanner.edges().size(), nodes.size() - 1);  // graph is connected
}

TEST(Spanner, RejectsInvalidInputs) {
  const auto nodes = square_grid(2, 100.0);
  EXPECT_THROW(lppm::Spanner::build({{0.0, 0.0}}, {}), util::InvalidArgument);
  EXPECT_THROW(lppm::Spanner::build(nodes, {.target_dilation = 1.0}),
               util::InvalidArgument);
  std::vector<geo::Point> coincident = {{0.0, 0.0}, {1.0, 0.0}, {0.0, 0.0}};
  EXPECT_THROW(lppm::Spanner::build(coincident, {}), util::InvalidArgument);
}

// ------------------------------------------------ approximate mechanism

lppm::ApproximateOptimalConfig approx_config(std::size_t side) {
  lppm::ApproximateOptimalConfig c;
  c.per_side = side;
  c.cell_spacing_m = 250.0;
  c.epsilon = std::log(4.0) / 200.0;
  return c;
}

TEST(ApproximateOptimal, SingleWindowRowsAreDistributions) {
  lppm::ApproximateBuildReport report;
  const auto mech = lppm::OptimalGeoIndMechanism::build_approximate(
      approx_config(3), &report);
  EXPECT_TRUE(mech.approximate());
  EXPECT_EQ(report.windows, 1u);
  EXPECT_EQ(report.window_solves_cold, 1u);
  EXPECT_EQ(report.cells, 9u);
  for (std::size_t i = 0; i < mech.cell_count(); ++i) {
    double sum = 0.0;
    for (const double p : mech.channel_row(i)) {
      EXPECT_GE(p, -1e-12);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  EXPECT_NE(mech.name().find("approx-optimal-geo-ind"), std::string::npos);
}

TEST(ApproximateOptimal, SingleWindowSatisfiesAllPairGeoInd) {
  // One window means the spanner chaining argument covers every cell
  // pair at the full epsilon; the slack tolerated here is the documented
  // perturbation leakage plus row-renormalization noise.
  lppm::ApproximateBuildReport report;
  const auto mech = lppm::OptimalGeoIndMechanism::build_approximate(
      approx_config(3), &report);
  EXPECT_LE(mech.max_constraint_violation(), 1e-3);
  EXPECT_NEAR(report.boundary_epsilon, report.intra_window_epsilon,
              0.1 * report.intra_window_epsilon);
}

TEST(ApproximateOptimal, UtilityLossWithinDilationBoundOfExact) {
  // The acceptance yardstick: on grids small enough for the exact solver,
  // the approximate quality loss is at most the certified dilation times
  // the exact optimum (epsilon deflated by delta scales the loss by at
  // most delta, the planar-Laplace scaling argument).
  for (const std::size_t side : {3u, 4u}) {
    lppm::ApproximateBuildReport report;
    const auto approx = lppm::OptimalGeoIndMechanism::build_approximate(
        approx_config(side), &report);
    lppm::OptimalMechanismConfig exact_config;
    exact_config.per_side = side;
    exact_config.cell_spacing_m = 250.0;
    exact_config.epsilon = std::log(4.0) / 200.0;
    const lppm::OptimalGeoIndMechanism exact(exact_config);
    EXPECT_LE(report.quality_loss,
              report.dilation * exact.expected_quality_loss() + 1e-6)
        << "side=" << side;
    EXPECT_GE(report.quality_loss,
              exact.expected_quality_loss() - 1e-6)  // never beats exact
        << "side=" << side;
  }
}

TEST(ApproximateOptimal, DeterministicAcrossBuilds) {
  lppm::ApproximateBuildReport a_report;
  lppm::ApproximateBuildReport b_report;
  const auto a = lppm::OptimalGeoIndMechanism::build_approximate(
      approx_config(6), &a_report);
  const auto b = lppm::OptimalGeoIndMechanism::build_approximate(
      approx_config(6), &b_report);
  EXPECT_EQ(a_report.dilation, b_report.dilation);
  EXPECT_EQ(a_report.quality_loss, b_report.quality_loss);
  for (std::size_t i = 0; i < a.cell_count(); ++i) {
    const auto& ra = a.channel_row(i);
    const auto& rb = b.channel_row(i);
    for (std::size_t j = 0; j < ra.size(); ++j) {
      ASSERT_EQ(ra[j], rb[j]) << i << "," << j;
    }
  }
}

TEST(ApproximateOptimal, DecomposedBuildReusesSameShapeWindows) {
  // 8x8 with 4-cell windows and overlap 1: 16 windows but only 4 distinct
  // shapes, and a uniform prior makes every same-shape objective
  // identical -- so exactly 4 cold solves and 12 pure reuses.
  lppm::ApproximateBuildReport report;
  const auto mech = lppm::OptimalGeoIndMechanism::build_approximate(
      approx_config(8), &report);
  EXPECT_EQ(report.windows, 16u);
  EXPECT_EQ(report.window_solves_cold, 4u);
  EXPECT_EQ(report.window_solves_warm, 0u);
  EXPECT_EQ(report.window_reuse_hits, 12u);
  EXPECT_GT(report.solve_stats.pivots, 0u);
  EXPECT_GT(report.lp_constraints, 0u);
  // Smoothing keeps the stitched rows stochastic and the seam budget
  // finite (though larger than the intra-window epsilon).
  for (std::size_t i = 0; i < mech.cell_count(); ++i) {
    double sum = 0.0;
    for (const double p : mech.channel_row(i)) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  EXPECT_TRUE(std::isfinite(report.boundary_epsilon));
  EXPECT_GE(report.boundary_epsilon, report.intra_window_epsilon);
}

TEST(ApproximateOptimal, NonUniformPriorTakesWarmRestartPath) {
  // Concentrated mass makes the windows near it carry distinct local
  // priors: same constraints, new objective -> warm phase-2 restarts.
  auto config = approx_config(6);
  config.prior.assign(36, 0.3 / 35.0);
  config.prior[14] = 0.7;
  lppm::ApproximateBuildReport report;
  const auto mech =
      lppm::OptimalGeoIndMechanism::build_approximate(config, &report);
  EXPECT_GE(report.window_solves_warm, 1u);
  EXPECT_GE(report.window_solves_cold, 1u);
  for (std::size_t i = 0; i < mech.cell_count(); ++i) {
    double sum = 0.0;
    for (const double p : mech.channel_row(i)) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(ApproximateOptimal, DisablingSmoothingLeavesSeamsUnbounded) {
  auto config = approx_config(8);
  config.boundary_smoothing = 0.0;
  lppm::ApproximateBuildReport report;
  (void)lppm::OptimalGeoIndMechanism::build_approximate(config, &report);
  // Without the uniform floor, adjacent windows can assign zero where the
  // neighbor assigns mass: the honest report is an infinite seam budget.
  EXPECT_TRUE(std::isinf(report.boundary_epsilon));
}

TEST(ApproximateOptimal, BuildsThousandCellGridQuickly) {
  // The headline acceptance: 32x32 = 1024 cells, infeasible for the dense
  // exact solver, builds in well under a minute.
  lppm::ApproximateBuildReport report;
  const auto mech = lppm::OptimalGeoIndMechanism::build_approximate(
      approx_config(32), &report);
  EXPECT_EQ(report.cells, 1024u);
  EXPECT_EQ(mech.cell_count(), 1024u);
  EXPECT_EQ(report.windows, 256u);
  EXPECT_GE(report.window_reuse_hits, 200u);  // uniform prior: shape reuse
  EXPECT_LT(report.construct_seconds, 60.0);
  EXPECT_GT(report.quality_loss, 0.0);
  EXPECT_LE(report.dilation, 1.5);
  // Spot-check stitched rows at a corner, an edge, and the interior.
  for (const std::size_t i : {0u, 31u, 528u}) {
    double sum = 0.0;
    for (const double p : mech.channel_row(i)) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(ApproximateOptimal, RejectsInvalidConfigs) {
  auto c = approx_config(8);
  c.per_side = 1;
  EXPECT_THROW(lppm::OptimalGeoIndMechanism::build_approximate(c),
               util::InvalidArgument);
  c = approx_config(8);
  c.spanner_dilation = 1.0;
  EXPECT_THROW(lppm::OptimalGeoIndMechanism::build_approximate(c),
               util::InvalidArgument);
  c = approx_config(8);
  c.window_overlap = 2;  // 2 * overlap must stay below window_side = 4
  EXPECT_THROW(lppm::OptimalGeoIndMechanism::build_approximate(c),
               util::InvalidArgument);
  c = approx_config(8);
  c.boundary_smoothing = 1.0;
  EXPECT_THROW(lppm::OptimalGeoIndMechanism::build_approximate(c),
               util::InvalidArgument);
  c = approx_config(8);
  c.prior.assign(64, 0.0);  // zero mass
  EXPECT_THROW(lppm::OptimalGeoIndMechanism::build_approximate(c),
               util::InvalidArgument);
}

}  // namespace
}  // namespace privlocad
