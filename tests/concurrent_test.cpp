// Tests for telemetry, the grid-attack baseline, and the thread-safe
// ConcurrentEdge wrapper (hammered from real threads).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "attack/grid_attack.hpp"
#include "core/concurrent_edge.hpp"
#include "core/telemetry.hpp"
#include "obs/metrics.hpp"
#include "par/thread_pool.hpp"
#include "trace/synthetic.hpp"
#include "lppm/planar_laplace.hpp"
#include "rng/engine.hpp"
#include "rng/samplers.hpp"
#include "util/validation.hpp"

namespace privlocad {
namespace {

core::EdgeConfig fast_config() {
  core::EdgeConfig c;
  c.top_params.radius_m = 500.0;
  c.top_params.epsilon = 1.0;
  c.top_params.delta = 0.01;
  c.top_params.n = 10;
  c.management.window_seconds = 1000;
  return c;
}

// ---------------------------------------------------------------- telemetry

TEST(Telemetry, RatiosAndMerge) {
  core::EdgeTelemetry a;
  a.requests = 10;
  a.top_reports = 7;
  a.nomadic_reports = 3;
  a.ads_seen = 100;
  a.ads_delivered = 25;
  EXPECT_DOUBLE_EQ(a.top_report_ratio(), 0.7);
  EXPECT_DOUBLE_EQ(a.filter_drop_ratio(), 0.75);

  core::EdgeTelemetry b;
  b.requests = 10;
  b.top_reports = 1;
  b.ads_seen = 100;
  b.ads_delivered = 75;
  a.merge(b);
  EXPECT_EQ(a.requests, 20u);
  EXPECT_DOUBLE_EQ(a.top_report_ratio(), 0.4);
  EXPECT_DOUBLE_EQ(a.filter_drop_ratio(), 0.5);
}

TEST(Telemetry, EmptyCountersAreSafe) {
  const core::EdgeTelemetry fresh;
  EXPECT_DOUBLE_EQ(fresh.top_report_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(fresh.filter_drop_ratio(), 0.0);
  EXPECT_FALSE(fresh.to_string().empty());
}

TEST(Telemetry, EdgeDeviceCountsReportsAndFilters) {
  core::EdgeDevice device(fast_config().with_seed(42));
  const geo::Point home{0, 0};
  trace::UserTrace history;
  history.user_id = 1;
  for (int i = 0; i < 50; ++i) history.check_ins.push_back({home, i});
  device.import_history(1, history);

  device.report_location(1, home, 2000);            // top
  device.report_location(1, {30000, 30000}, 2001);  // nomadic
  device.filter_ads({{1, {1000, 0}, "a", 1.0}, {2, {20000, 0}, "b", 1.0}},
                    home);

  const core::EdgeTelemetry& t = device.telemetry();
  EXPECT_EQ(t.requests, 2u);
  EXPECT_EQ(t.top_reports, 1u);
  EXPECT_EQ(t.nomadic_reports, 1u);
  EXPECT_EQ(t.tables_generated, 1u);
  EXPECT_EQ(t.ads_seen, 2u);
  EXPECT_EQ(t.ads_delivered, 1u);
}

// -------------------------------------------------------------- grid attack

TEST(GridAttack, RecoversSingleClusterUnderLaplaceNoise) {
  const lppm::PlanarLaplaceMechanism mech({std::log(4.0), 200.0});
  rng::Engine e(1);
  const geo::Point home{5000.0, -3000.0};
  std::vector<geo::Point> observed;
  for (int i = 0; i < 500; ++i) observed.push_back(mech.obfuscate_one(e, home));

  attack::GridAttackConfig config;
  config.cell_size_m = 300.0;
  const auto inferred = attack::grid_attack(observed, config);
  ASSERT_EQ(inferred.size(), 1u);
  EXPECT_LT(geo::distance(inferred[0].location, home), 150.0);
  EXPECT_GT(inferred[0].support, 100u);
}

TEST(GridAttack, TopTwoSeparatedClusters) {
  rng::Engine e(2);
  std::vector<geo::Point> observed;
  for (int i = 0; i < 300; ++i) {
    observed.push_back(geo::Point{0, 0} + rng::planar_laplace_noise(e, 0.01));
  }
  for (int i = 0; i < 150; ++i) {
    observed.push_back(geo::Point{9000, 0} +
                       rng::planar_laplace_noise(e, 0.01));
  }
  attack::GridAttackConfig config;
  config.cell_size_m = 300.0;
  config.top_n = 2;
  const auto inferred = attack::grid_attack(observed, config);
  ASSERT_EQ(inferred.size(), 2u);
  EXPECT_LT(geo::distance(inferred[0].location, {0, 0}), 200.0);
  EXPECT_LT(geo::distance(inferred[1].location, {9000, 0}), 200.0);
}

TEST(GridAttack, EmptyAndDegenerateInputs) {
  attack::GridAttackConfig config;
  EXPECT_TRUE(attack::grid_attack({}, config).empty());
  config.top_n = 3;
  const auto inferred = attack::grid_attack({{0, 0}}, config);
  EXPECT_EQ(inferred.size(), 1u);  // runs out of points gracefully
  config.cell_size_m = 0.0;
  EXPECT_THROW(attack::grid_attack({{0, 0}}, config), util::InvalidArgument);
}

TEST(GridAttack, NegativeCoordinatesBinCorrectly) {
  std::vector<geo::Point> observed;
  for (int i = 0; i < 50; ++i) observed.push_back({-5000.0, -5000.0});
  attack::GridAttackConfig config;
  config.cell_size_m = 100.0;
  const auto inferred = attack::grid_attack(observed, config);
  ASSERT_EQ(inferred.size(), 1u);
  EXPECT_NEAR(inferred[0].location.x, -5000.0, 1e-9);
}

// ---------------------------------------------------------- concurrent edge

TEST(ConcurrentEdge, SingleThreadBehavesLikeEdgeDevice) {
  core::ConcurrentEdge edge(fast_config().with_shards(4).with_seed(42));
  const geo::Point home{0, 0};
  trace::UserTrace history;
  history.user_id = 1;
  for (int i = 0; i < 50; ++i) history.check_ins.push_back({home, i});
  edge.import_history(1, history);

  const core::ReportedLocation r = edge.report_location(1, home, 2000);
  EXPECT_EQ(r.kind, core::ReportKind::kTopLocation);
  EXPECT_EQ(edge.user_count(), 1u);
  EXPECT_EQ(edge.telemetry().requests, 1u);
}

TEST(ConcurrentEdge, UsersStickToOneShard) {
  core::ConcurrentEdge edge(fast_config().with_shards(4).with_seed(42));
  // Two requests from the same user must hit the same per-user state:
  // the second one is counted for the same user, not a duplicate user.
  edge.report_location(7, {0, 0}, 0);
  edge.report_location(7, {10, 0}, 1);
  EXPECT_EQ(edge.user_count(), 1u);
  EXPECT_EQ(edge.telemetry().requests, 2u);
}

TEST(ConcurrentEdge, ParallelHammeringKeepsCountsExact) {
  core::ConcurrentEdge edge(fast_config().with_shards(8).with_seed(42));
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 500;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&edge, t] {
      rng::Engine e(1000 + t);
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const std::uint64_t user = t * 100 + (i % 50);
        edge.report_location(user,
                             {e.uniform_in(-40000, 40000),
                              e.uniform_in(-40000, 40000)},
                             i);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const core::EdgeTelemetry total = edge.telemetry();
  EXPECT_EQ(total.requests,
            static_cast<std::size_t>(kThreads * kRequestsPerThread));
  EXPECT_EQ(total.top_reports + total.nomadic_reports, total.requests);
  EXPECT_EQ(edge.user_count(), static_cast<std::size_t>(kThreads * 50));
}

TEST(ConcurrentEdge, BatchServeMatchesSerialTelemetry) {
  // serve_trace_batch from a multi-threaded pool must be a faster version
  // of the same computation: every telemetry total agrees with the 1-thread
  // run because report classification depends only on per-user state.
  // This test is also the TSan target (-DPRIVLOCAD_SANITIZE=thread).
  trace::SyntheticConfig synth;
  synth.min_check_ins = 30;
  synth.max_check_ins = 120;
  const rng::Engine parent(404);
  const auto population = trace::generate_population(parent, synth, 32);
  std::vector<trace::UserTrace> traces;
  traces.reserve(population.size());
  for (const trace::SyntheticUser& user : population) {
    traces.push_back(user.trace);
  }

  par::ThreadPool serial_pool(1);
  core::ConcurrentEdge serial_edge(fast_config().with_shards(8).with_seed(42));
  const core::BatchServeStats serial =
      serial_edge.serve_trace_batch(traces, serial_pool);

  par::ThreadPool parallel_pool(8);
  core::ConcurrentEdge parallel_edge(fast_config().with_shards(8).with_seed(42));
  const core::BatchServeStats parallel =
      parallel_edge.serve_trace_batch(traces, parallel_pool);

  std::size_t expected_requests = 0;
  for (const trace::UserTrace& t : traces) {
    expected_requests += t.check_ins.size();
  }
  EXPECT_EQ(serial.users, traces.size());
  EXPECT_EQ(parallel.users, traces.size());
  EXPECT_EQ(serial.requests, expected_requests);
  EXPECT_EQ(parallel.requests, expected_requests);

  const core::EdgeTelemetry a = serial_edge.telemetry();
  const core::EdgeTelemetry b = parallel_edge.telemetry();
  EXPECT_EQ(a.requests, expected_requests);
  EXPECT_EQ(b.requests, a.requests);
  EXPECT_EQ(b.top_reports, a.top_reports);
  EXPECT_EQ(b.nomadic_reports, a.nomadic_reports);
  EXPECT_EQ(b.tables_generated, a.tables_generated);
  EXPECT_EQ(parallel_edge.user_count(), serial_edge.user_count());
}

TEST(ConcurrentEdge, RejectsZeroShards) {
  EXPECT_THROW(core::ConcurrentEdge(fast_config().with_shards(0).with_seed(1)),
               util::InvalidArgument);
}

// ------------------------------------------------------------ observability

TEST(Telemetry, FromRegistryReadsEdgeCounters) {
  obs::MetricsRegistry registry;
  registry.counter(core::edge_metrics::kTopReports).add(6);
  registry.counter(core::edge_metrics::kNomadicReports).add(3);
  const core::EdgeTelemetry t = core::EdgeTelemetry::from_registry(registry);
  // requests is derived, not stored: always top + nomadic.
  EXPECT_EQ(t.requests, 9u);
  EXPECT_EQ(t.top_reports, 6u);
  EXPECT_EQ(t.nomadic_reports, 3u);
  EXPECT_DOUBLE_EQ(t.top_report_ratio(), 6.0 / 9.0);
}

TEST(EdgeDevice, ServeLatencySamplesOneInStrideRequests) {
  core::EdgeDevice device(fast_config().with_seed(42));
  const std::uint64_t requests = 2 * core::kServeLatencySampleStride + 3;
  for (std::uint64_t i = 0; i < requests; ++i) {
    device.report_location(1 + i % 3, {0, 0},
                           static_cast<trace::Timestamp>(i));
  }
  // Samples land at call 0, stride, 2*stride, ... => ceil(requests/stride).
  const obs::LatencyHistogram& latency =
      device.metrics().histogram(core::edge_metrics::kServeLatencyUs);
  EXPECT_EQ(latency.count(), 3u);
  EXPECT_EQ(latency.invalid(), 0u);
  EXPECT_GE(latency.quantile(0.99), 0.0);
}

TEST(ConcurrentEdge, RegistryTracksRequestsLatencyAndShardLocks) {
  core::ConcurrentEdge edge(fast_config().with_shards(4).with_seed(42));
  trace::SyntheticConfig synth;
  synth.min_check_ins = 20;
  synth.max_check_ins = 60;
  const rng::Engine parent(7);
  const auto population = trace::generate_population(parent, synth, 12);
  std::vector<trace::UserTrace> traces;
  traces.reserve(population.size());
  for (const trace::SyntheticUser& user : population) {
    traces.push_back(user.trace);
  }

  par::ThreadPool pool(4);
  const core::BatchServeStats stats = edge.serve_trace_batch(traces, pool);

  // Each shard device samples one request in kServeLatencySampleStride
  // (starting with its first), so across 4 shards the sample count is
  // requests/stride rounded up per shard.
  const obs::LatencyHistogram& latency =
      edge.metrics().histogram(core::edge_metrics::kServeLatencyUs);
  EXPECT_GE(latency.count(), stats.requests / core::kServeLatencySampleStride);
  EXPECT_LE(latency.count(),
            stats.requests / core::kServeLatencySampleStride + 4);

  // Every request took a shard lock at least once; the per-shard
  // acquisition counters must account for all of them.
  std::uint64_t acquisitions = 0;
  for (int s = 0; s < 4; ++s) {
    acquisitions += edge.metrics().counter_value(
        "edge.shard" + std::to_string(s) + ".lock_acquisitions");
  }
  EXPECT_GE(acquisitions, stats.requests);

  // The lock-free telemetry rollup reads the same registry.
  EXPECT_EQ(edge.telemetry().requests, stats.requests);

  // serve_trace_batch exports the pool gauges into the edge registry.
  EXPECT_NE(edge.metrics().to_json().find("\"pool.tasks_executed\""),
            std::string::npos);
}

}  // namespace
}  // namespace privlocad
