// Tests for the WGS-84-facing GeoFrontend wrapper.
#include <gtest/gtest.h>

#include "adnet/advertiser.hpp"
#include "core/geo_frontend.hpp"
#include "rng/engine.hpp"
#include "util/validation.hpp"

namespace privlocad::core {
namespace {

EdgeConfig edge_config() {
  EdgeConfig c;
  c.top_params.radius_m = 500.0;
  c.top_params.epsilon = 1.0;
  c.top_params.delta = 0.01;
  c.top_params.n = 10;
  c.targeting_radius_m = 5000.0;
  return c;
}

std::vector<adnet::Advertiser> campaigns() {
  rng::Engine e(4);
  return adnet::generate_campaigns(e, adnet::table1_presets()[3], 500,
                                   40000.0, 10000.0);
}

TEST(GeoFrontend, ServesRequestInsideServiceArea) {
  EdgePrivLocAd system(edge_config().with_seed(5), campaigns());
  GeoFrontend frontend = shanghai_frontend(system);

  const geo::LatLon downtown{31.05, 121.5};
  const GeoServedAds served =
      frontend.on_lba_request(1, downtown, trace::kStudyStart);

  // The reported location is geographic and near the study area (the
  // mechanism can push a few km outside the box's edge, but the scale is
  // bounded by the mechanism's tail).
  EXPECT_GT(served.reported_location.lat_deg, 30.0);
  EXPECT_LT(served.reported_location.lat_deg, 32.0);
  // The report must not be the true location.
  EXPECT_GT(geo::haversine_distance(served.reported_location, downtown),
            1.0);
}

TEST(GeoFrontend, RejectsRequestsOutsideServiceArea) {
  EdgePrivLocAd system(edge_config().with_seed(6), campaigns());
  GeoFrontend frontend = shanghai_frontend(system);
  const geo::LatLon paris{48.85, 2.35};
  EXPECT_THROW(frontend.on_lba_request(1, paris, 0), util::InvalidArgument);
}

TEST(GeoFrontend, HistoryImportEnablesTopLocationReports) {
  EdgePrivLocAd system(edge_config().with_seed(7), campaigns());
  GeoFrontend frontend = shanghai_frontend(system);

  const geo::LatLon home{31.1, 121.45};
  std::vector<std::pair<geo::LatLon, trace::Timestamp>> visits;
  for (int i = 0; i < 50; ++i) {
    visits.emplace_back(home, trace::kStudyStart + i * 3600);
  }
  frontend.import_history(1, visits);

  const GeoServedAds served = frontend.on_lba_request(
      1, home, trace::kStudyStart + 100 * trace::kSecondsPerDay);
  EXPECT_EQ(served.report_kind, ReportKind::kTopLocation);
}

TEST(GeoFrontend, HistoryImportValidatesArea) {
  EdgePrivLocAd system(edge_config().with_seed(8), campaigns());
  GeoFrontend frontend = shanghai_frontend(system);
  EXPECT_THROW(frontend.import_history(1, {{geo::LatLon{0.0, 0.0}, 0}}),
               util::InvalidArgument);
}

TEST(GeoFrontend, DeliveredAdsAreGeographicAndRelevant) {
  EdgePrivLocAd system(edge_config().with_seed(9), campaigns());
  GeoFrontend frontend = shanghai_frontend(system);

  const geo::LatLon user{31.05, 121.5};
  bool saw_any = false;
  for (int i = 0; i < 20 && !saw_any; ++i) {
    const GeoServedAds served =
        frontend.on_lba_request(1, user, trace::kStudyStart + i);
    for (const GeoAd& ad : served.delivered) {
      saw_any = true;
      // AOI filter ran against the true location: every delivered ad's
      // business is within 5 km of the user.
      EXPECT_LE(geo::haversine_distance(ad.business_location, user),
                5000.0 * 1.01);
      EXPECT_FALSE(ad.category.empty());
    }
  }
  // With 500 campaigns over the box, some request should deliver ads.
  EXPECT_TRUE(saw_any);
}

}  // namespace
}  // namespace privlocad::core
