// Tests for the parallel-execution subsystem: the work-stealing ThreadPool,
// the parallel_for / parallel_map helpers, and the determinism contract --
// seed-split workloads must produce byte-identical output at any thread
// count (threads=1 is the serial reference ordering).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "attack/evaluation.hpp"
#include "lppm/planar_laplace.hpp"
#include "par/parallel.hpp"
#include "par/thread_pool.hpp"
#include "trace/synthetic.hpp"
#include "util/validation.hpp"

namespace privlocad {
namespace {

// ------------------------------------------------------------- pool basics

TEST(ThreadPool, ReportsConfiguredThreadCount) {
  par::ThreadPool one(1);
  par::ThreadPool four(4);
  EXPECT_EQ(one.thread_count(), 1u);
  EXPECT_EQ(four.thread_count(), 4u);
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(par::ThreadPool(0), util::InvalidArgument);
}

TEST(ThreadPool, ForEachIndexCoversEveryIndexExactlyOnce) {
  par::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  par::parallel_for(pool, 0, hits.size(), /*grain=*/7,
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyAndSingleChunkRangesWork) {
  par::ThreadPool pool(4);
  std::atomic<int> calls{0};
  par::parallel_for(pool, 5, 5, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  par::parallel_for(pool, 0, 3, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPool, UnevenTasksStillComplete) {
  // Chunks of wildly different cost exercise the steal path: the worker
  // stuck on the heavy head chunks loses its queued tail to the others.
  par::ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  par::parallel_for(pool, 0, 64, /*grain=*/1, [&](std::size_t i) {
    volatile double burn = 1.0;
    const std::size_t spins = i < 4 ? 200000 : 100;
    for (std::size_t k = 0; k < spins; ++k) burn = burn * 1.0000001;
    sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 64u * 63u / 2u);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  par::ThreadPool pool(2);
  std::atomic<int> inner_calls{0};
  par::parallel_for(pool, 0, 8, /*grain=*/1, [&](std::size_t) {
    par::parallel_for(pool, 0, 10, /*grain=*/1,
                      [&](std::size_t) { inner_calls.fetch_add(1); });
  });
  EXPECT_EQ(inner_calls.load(), 80);
}

TEST(ThreadPool, ExceptionsPropagateToTheCaller) {
  par::ThreadPool pool(4);
  EXPECT_THROW(
      par::parallel_for(pool, 0, 100, /*grain=*/1,
                        [](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, SubmitRunsInlineOnSingleThreadPool) {
  par::ThreadPool pool(1);
  bool ran = false;
  pool.submit([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(HardwareThreads, EnvVariableOverrides) {
  ASSERT_EQ(setenv("PRIVLOCAD_THREADS", "3", 1), 0);
  EXPECT_EQ(par::hardware_threads(), 3u);
  ASSERT_EQ(setenv("PRIVLOCAD_THREADS", "garbage", 1), 0);
  EXPECT_GE(par::hardware_threads(), 1u);  // falls back to hardware
  ASSERT_EQ(unsetenv("PRIVLOCAD_THREADS"), 0);
  EXPECT_GE(par::hardware_threads(), 1u);
}

TEST(DefaultGrain, ReasonableSizes) {
  EXPECT_EQ(par::default_grain(0, 8), 1u);
  EXPECT_EQ(par::default_grain(10, 8), 1u);
  EXPECT_EQ(par::default_grain(3200, 8), 100u);
}

// ------------------------------------------------------------ parallel_map

TEST(ParallelMap, PreservesInputOrder) {
  par::ThreadPool pool(8);
  std::vector<int> items(500);
  std::iota(items.begin(), items.end(), 0);
  const std::vector<int> squares = par::parallel_map(
      pool, items, [](const int& x, std::size_t) { return x * x; });
  ASSERT_EQ(squares.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(squares[i], static_cast<int>(i * i));
  }
}

TEST(ParallelMap, IndexArgumentMatchesSlot) {
  par::ThreadPool pool(8);
  const std::vector<int> items(200, 0);
  const auto indices = par::parallel_map(
      pool, items, [](const int&, std::size_t i) { return i; });
  for (std::size_t i = 0; i < indices.size(); ++i) EXPECT_EQ(indices[i], i);
}

TEST(ParallelMap, EmptyInputYieldsEmptyOutput) {
  par::ThreadPool pool(4);
  const std::vector<int> empty;
  EXPECT_TRUE(par::parallel_map(pool, empty, [](const int& x, std::size_t) {
                return x;
              }).empty());
}

// ----------------------------------------------- determinism: generation

TEST(Determinism, GeneratePopulationIdenticalAcrossThreadCounts) {
  trace::SyntheticConfig config;
  config.min_check_ins = 20;
  config.max_check_ins = 80;
  const rng::Engine parent(77);

  par::ThreadPool serial(1);
  par::ThreadPool parallel(8);
  const auto a = trace::generate_population(serial, parent, config, 48);
  const auto b = trace::generate_population(parallel, parent, config, 48);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t u = 0; u < a.size(); ++u) {
    EXPECT_EQ(a[u].trace.user_id, b[u].trace.user_id);
    ASSERT_EQ(a[u].trace.check_ins.size(), b[u].trace.check_ins.size());
    for (std::size_t c = 0; c < a[u].trace.check_ins.size(); ++c) {
      // Byte-identical, not approximately equal: same split stream, same
      // arithmetic, independent of scheduling.
      EXPECT_EQ(a[u].trace.check_ins[c].position.x,
                b[u].trace.check_ins[c].position.x);
      EXPECT_EQ(a[u].trace.check_ins[c].position.y,
                b[u].trace.check_ins[c].position.y);
      EXPECT_EQ(a[u].trace.check_ins[c].time, b[u].trace.check_ins[c].time);
    }
    ASSERT_EQ(a[u].truth.top_locations.size(),
              b[u].truth.top_locations.size());
    for (std::size_t k = 0; k < a[u].truth.top_locations.size(); ++k) {
      EXPECT_EQ(a[u].truth.top_locations[k].x, b[u].truth.top_locations[k].x);
      EXPECT_EQ(a[u].truth.top_locations[k].y, b[u].truth.top_locations[k].y);
    }
  }
}

// ------------------------------------------------ determinism: the attack

TEST(Determinism, EvaluatePopulationIdenticalAcrossThreadCounts) {
  trace::SyntheticConfig config;
  config.min_check_ins = 40;
  config.max_check_ins = 200;
  const rng::Engine parent(123);
  const auto population = trace::generate_population(parent, config, 24);

  const lppm::PlanarLaplaceMechanism mech({std::log(4.0), 200.0});
  attack::PopulationAttackProtocol protocol;
  protocol.deobfuscation.trim_radius_m = mech.tail_radius(0.05);
  protocol.deobfuscation.connectivity_threshold_m =
      protocol.deobfuscation.trim_radius_m / 4.0;
  protocol.deobfuscation.top_n = 2;

  const attack::ObservationFn observe =
      [&mech](rng::Engine& e, const trace::SyntheticUser& user) {
        std::vector<geo::Point> observed;
        observed.reserve(user.trace.check_ins.size());
        for (const trace::CheckIn& c : user.trace.check_ins) {
          observed.push_back(mech.obfuscate_one(e, c.position));
        }
        return observed;
      };

  par::ThreadPool serial(1);
  par::ThreadPool parallel(8);
  const auto a =
      attack::evaluate_population(serial, population, protocol, observe);
  const auto b =
      attack::evaluate_population(parallel, population, protocol, observe);

  ASSERT_EQ(a.users(), population.size());
  ASSERT_EQ(a.users(), b.users());
  for (std::size_t rank = 0; rank < 2; ++rank) {
    for (std::size_t t = 0; t < a.thresholds().size(); ++t) {
      EXPECT_EQ(a.rate(rank, t), b.rate(rank, t));
    }
  }
  // Sanity: with l = ln4 at r = 200 m and plenty of check-ins, the attack
  // should recover a decent share of top-1 locations (Fig. 6 shape).
  EXPECT_GT(a.rate(0, 1), 0.2);
}

}  // namespace
}  // namespace privlocad
