// Tests for the observability layer: sharded counters, gauges, latency
// histograms, the scoped timer, the metrics registry, and JSON export.
// The multi-threaded suites double as the TSan target for this module
// (-DPRIVLOCAD_SANITIZE=thread): totals must stay exact under hammering.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "par/thread_pool.hpp"
#include "util/validation.hpp"

namespace privlocad::obs {
namespace {

// ------------------------------------------------------------------ counter

TEST(Counter, AccumulatesSingleThread) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ExactUnderParallelHammering) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.add();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

// -------------------------------------------------------------------- gauge

TEST(Gauge, LastWriteWins) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

// ---------------------------------------------------------------- histogram

TEST(LatencyHistogram, CtorRejectsBadBounds) {
  EXPECT_THROW(LatencyHistogram({}), util::InvalidArgument);
  EXPECT_THROW(LatencyHistogram({1.0, 1.0}), util::InvalidArgument);
  EXPECT_THROW(LatencyHistogram({2.0, 1.0}), util::InvalidArgument);
  EXPECT_THROW(
      LatencyHistogram({1.0, std::numeric_limits<double>::infinity()}),
      util::InvalidArgument);
  EXPECT_THROW(
      LatencyHistogram({std::numeric_limits<double>::quiet_NaN()}),
      util::InvalidArgument);
}

TEST(LatencyHistogram, CountSumMeanInvalid) {
  LatencyHistogram h({10.0, 20.0, 30.0});
  h.record(5.0);
  h.record(15.0);
  h.record(std::numeric_limits<double>::quiet_NaN());
  h.record(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.invalid(), 2u);
  EXPECT_DOUBLE_EQ(h.sum(), 20.0);
  EXPECT_DOUBLE_EQ(h.mean(), 10.0);
}

TEST(LatencyHistogram, BucketEdgesAreUpperInclusive) {
  LatencyHistogram h({10.0, 20.0, 30.0});
  h.record(10.0);  // bucket 0: (0, 10]
  h.record(10.5);  // bucket 1: (10, 20]
  h.record(31.0);  // overflow
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(LatencyHistogram, QuantileInterpolatesWithinBucket) {
  LatencyHistogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 100; ++i) h.record(15.0);
  // All mass sits in (10, 20]; the median interpolates to its middle.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
}

TEST(LatencyHistogram, OverflowClampsToLastBound) {
  LatencyHistogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 10; ++i) h.record(1e9);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 30.0);
}

TEST(LatencyHistogram, EmptyAndDomainErrors) {
  LatencyHistogram h({10.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_THROW(h.quantile(-0.1), util::InvalidArgument);
  EXPECT_THROW(h.quantile(1.1), util::InvalidArgument);
}

TEST(LatencyHistogram, ExactUnderParallelHammering) {
  LatencyHistogram h(default_latency_bounds_us());
  constexpr int kThreads = 8;
  constexpr int kRecordsPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kRecordsPerThread; ++i) {
        h.record(static_cast<double>((t * 31 + i) % 1000) + 1.0);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const std::uint64_t expected =
      static_cast<std::uint64_t>(kThreads) * kRecordsPerThread;
  EXPECT_EQ(h.count(), expected);
  EXPECT_EQ(h.invalid(), 0u);
  std::uint64_t binned = 0;
  for (const std::uint64_t c : h.bucket_counts()) binned += c;
  EXPECT_EQ(binned, expected);
  // Every recorded value lies in [1, 1000], so the quantiles must too.
  EXPECT_GE(h.quantile(0.5), 1.0);
  EXPECT_LE(h.quantile(0.99), 1000.0);
}

// ------------------------------------------------------------- scoped timer

TEST(ScopedLatencyTimer, RecordsOneSampleOnDestruction) {
  LatencyHistogram h(default_latency_bounds_us());
  { const ScopedLatencyTimer timer(&h); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
}

TEST(ScopedLatencyTimer, NullHistogramIsNoOp) {
  const ScopedLatencyTimer timer(nullptr);  // must not crash
}

// ----------------------------------------------------------------- registry

TEST(MetricsRegistry, SameNameReturnsSameMetric) {
  MetricsRegistry registry;
  Counter& a = registry.counter("requests");
  Counter& b = registry.counter("requests");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(registry.counter_value("requests"), 3u);
  EXPECT_EQ(registry.counter_value("absent"), 0u);

  LatencyHistogram& h1 = registry.histogram("latency", {10.0, 20.0});
  LatencyHistogram& h2 = registry.histogram("latency");  // first bounds win
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h1.upper_bounds().size(), 2u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), util::InvalidArgument);
  EXPECT_THROW(registry.histogram("x"), util::InvalidArgument);
  registry.histogram("h");
  EXPECT_THROW(registry.counter("h"), util::InvalidArgument);
}

TEST(MetricsRegistry, JsonExportUsesFlatSchema) {
  MetricsRegistry registry;
  registry.counter("edge.requests").add(7);
  registry.gauge("pool.queue_depth").set(2.0);
  registry.histogram("serve_us", {10.0, 20.0}).record(15.0);

  JsonWriter json;
  registry.append_json(json, "m.");
  const std::string text = json.to_string();
  EXPECT_NE(text.find("\"m.edge.requests\": 7"), std::string::npos);
  EXPECT_NE(text.find("\"m.pool.queue_depth\""), std::string::npos);
  EXPECT_NE(text.find("\"m.serve_us_count\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"m.serve_us_mean\""), std::string::npos);
  EXPECT_NE(text.find("\"m.serve_us_p50\""), std::string::npos);
  EXPECT_NE(text.find("\"m.serve_us_p95\""), std::string::npos);
  EXPECT_NE(text.find("\"m.serve_us_p99\""), std::string::npos);
  EXPECT_FALSE(registry.to_string().empty());
}

TEST(MetricsRegistry, WriteJsonFileRoundTrips) {
  MetricsRegistry registry;
  registry.counter("n").add(5);
  const std::string path = ::testing::TempDir() + "obs_registry_test.json";
  ASSERT_TRUE(registry.write_json_file(path));
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"n\": 5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(MetricsRegistry, ExportToEnvPathHonorsVariable) {
  MetricsRegistry registry;
  registry.counter("n").add(1);

  ::unsetenv("PRIVLOCAD_METRICS");
  EXPECT_FALSE(registry.export_to_env_path());

  const std::string path = ::testing::TempDir() + "obs_env_export_test.json";
  ::setenv("PRIVLOCAD_METRICS", path.c_str(), 1);
  EXPECT_TRUE(registry.export_to_env_path());
  ::unsetenv("PRIVLOCAD_METRICS");
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::remove(path.c_str());
}

TEST(MetricsRegistry, ExactUnderThreadPoolHammering) {
  // The integration shape the serving path uses: tasks on a real pool
  // resolve metrics once and hammer them concurrently. Totals must be
  // exact, and registration from many threads must be safe.
  MetricsRegistry registry;
  par::ThreadPool pool(8);
  constexpr std::size_t kTasks = 64;
  constexpr int kOpsPerTask = 2000;

  pool.for_each_index(0, kTasks, 1, [&registry](std::size_t task) {
    Counter& hits = registry.counter("hits");
    LatencyHistogram& latency = registry.histogram("latency_us");
    for (int i = 0; i < kOpsPerTask; ++i) {
      hits.add();
      latency.record(static_cast<double>((task + i) % 500) + 0.5);
    }
    registry.counter("task." + std::to_string(task % 4)).add();
  });

  EXPECT_EQ(registry.counter_value("hits"),
            static_cast<std::uint64_t>(kTasks) * kOpsPerTask);
  EXPECT_EQ(registry.histogram("latency_us").count(),
            static_cast<std::uint64_t>(kTasks) * kOpsPerTask);
  std::uint64_t sharded = 0;
  for (int s = 0; s < 4; ++s) {
    sharded += registry.counter_value("task." + std::to_string(s));
  }
  EXPECT_EQ(sharded, kTasks);

  const par::PoolStats stats = pool.stats();
  EXPECT_EQ(stats.queue_depth, 0u);
  pool.export_metrics(registry);
  EXPECT_NE(registry.to_json().find("\"pool.tasks_executed\""),
            std::string::npos);
}

// Regression: a quantile rank landing in the trailing overflow bucket
// must CLAMP to the last finite bound, never report a value past the
// histogram range (there is no upper edge to interpolate toward).
TEST(LatencyHistogram, QuantileInOverflowBucketClampsToLastBound) {
  LatencyHistogram h({1.0, 10.0});
  h.record(250.0);
  h.record(1e6);
  h.record(1e9);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(LatencyHistogram, QuantileMixedFiniteAndOverflowRanks) {
  LatencyHistogram h({1.0, 10.0});
  for (int i = 0; i < 9; ++i) h.record(0.5);  // first bucket
  h.record(1e9);                              // overflow
  // Rank 9/10 still lands in the finite first bucket: interpolation stays
  // inside (0, 1].
  EXPECT_LE(h.quantile(0.9), 1.0);
  // Ranks past the finite mass clamp to the last bound -- and are never
  // extrapolated beyond it.
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

// -------------------------------------------------------------- json writer

TEST(JsonWriter, PreservesOrderAndEscapes) {
  JsonWriter json;
  json.add("first", std::uint64_t{1});
  json.add("nan_value", std::numeric_limits<double>::quiet_NaN());
  json.add_string("label", "say \"hi\"\nthere");
  const std::string text = json.to_string();
  EXPECT_NE(text.find("\"first\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"nan_value\": null"), std::string::npos);
  EXPECT_NE(text.find("\\\"hi\\\""), std::string::npos);
  EXPECT_NE(text.find("\\n"), std::string::npos);
  EXPECT_LT(text.find("first"), text.find("label"));
}

}  // namespace
}  // namespace privlocad::obs
