// Tests for the Bayesian posterior remapper (privacy-free utility
// post-processing for the nomadic one-time path).
#include <gtest/gtest.h>

#include <cmath>

#include "lppm/planar_laplace.hpp"
#include "lppm/remapping.hpp"
#include "rng/engine.hpp"
#include "stats/running_stats.hpp"
#include "util/validation.hpp"

namespace privlocad::lppm {
namespace {

TEST(Remapper, SingleSupportPointAlwaysWins) {
  const BayesianRemapper remapper({{{100.0, 200.0}, 1.0}});
  const geo::Point out = remapper.remap_laplace({-5000, 5000}, 0.01);
  EXPECT_NEAR(out.x, 100.0, 1e-9);
  EXPECT_NEAR(out.y, 200.0, 1e-9);
}

TEST(Remapper, PullsTowardsNearestHeavySupport) {
  const BayesianRemapper remapper(
      {{{0, 0}, 1.0}, {{10000, 0}, 1.0}});
  // Reported close to the first support: posterior mean lands near it.
  const geo::Point out = remapper.remap_gaussian({500, 0}, 300.0);
  EXPECT_LT(out.x, 100.0);
}

TEST(Remapper, SymmetricReportSplitsEvenly) {
  const BayesianRemapper remapper({{{0, 0}, 1.0}, {{1000, 0}, 1.0}});
  const geo::Point out = remapper.remap_gaussian({500, 0}, 300.0);
  EXPECT_NEAR(out.x, 500.0, 1e-6);  // equidistant -> mean of supports
}

TEST(Remapper, PriorWeightsBias) {
  const BayesianRemapper remapper({{{0, 0}, 9.0}, {{1000, 0}, 1.0}});
  const geo::Point out = remapper.remap_gaussian({500, 0}, 300.0);
  EXPECT_LT(out.x, 500.0);  // heavier prior on the left support
}

TEST(Remapper, ZeroWeightSupportIsIgnored) {
  const BayesianRemapper remapper({{{0, 0}, 1.0}, {{1000, 0}, 0.0}});
  const geo::Point out = remapper.remap_gaussian({900, 0}, 100.0);
  EXPECT_NEAR(out.x, 0.0, 1e-9);
}

TEST(Remapper, NumericallyStableOverMetroDistances) {
  // Exponents of -(40 km / 100 m)^2 would underflow without the log-shift.
  const BayesianRemapper remapper(
      {{{-40000, -40000}, 1.0}, {{40000, 40000}, 1.0}});
  const geo::Point out = remapper.remap_gaussian({-39000, -39000}, 100.0);
  EXPECT_NEAR(out.x, -40000.0, 1e-6);
  EXPECT_FALSE(std::isnan(out.x));
}

TEST(Remapper, ReducesExpectedErrorWithInformativePrior) {
  // The headline property: with the true location on the prior's support,
  // remapping cuts the mean error of planar-Laplace reports.
  const geo::BoundingBox box({-5000, -5000}, {5000, 5000});
  std::vector<PriorPoint> prior = uniform_grid_prior(box, 11);
  const BayesianRemapper remapper(prior);

  const double eps = std::log(4.0) / 200.0;
  const PlanarLaplaceMechanism mech({std::log(4.0), 200.0});
  // True location = one of the grid cells' centers.
  const geo::Point truth = prior[60].location;

  rng::Engine e(5);
  stats::RunningStats raw_error, remapped_error;
  for (int i = 0; i < 3000; ++i) {
    const geo::Point reported = mech.obfuscate_one(e, truth);
    raw_error.add(geo::distance(reported, truth));
    remapped_error.add(
        geo::distance(remapper.remap_laplace(reported, eps), truth));
  }
  EXPECT_LT(remapped_error.mean(), raw_error.mean());
}

TEST(Remapper, GridPriorCoversTheBox) {
  const geo::BoundingBox box({0, 0}, {100, 100});
  const auto prior = uniform_grid_prior(box, 4);
  ASSERT_EQ(prior.size(), 16u);
  for (const PriorPoint& p : prior) {
    EXPECT_TRUE(box.contains(p.location));
    EXPECT_DOUBLE_EQ(p.weight, 1.0);
  }
  // Cell centers: first at (12.5, 12.5).
  EXPECT_DOUBLE_EQ(prior[0].location.x, 12.5);
}

TEST(Remapper, DomainErrors) {
  EXPECT_THROW(BayesianRemapper({}), util::InvalidArgument);
  EXPECT_THROW(BayesianRemapper({{{0, 0}, -1.0}}), util::InvalidArgument);
  EXPECT_THROW(BayesianRemapper({{{0, 0}, 0.0}}), util::InvalidArgument);
  const BayesianRemapper remapper({{{0, 0}, 1.0}});
  EXPECT_THROW(remapper.remap_laplace({0, 0}, 0.0), util::InvalidArgument);
  EXPECT_THROW(remapper.remap_gaussian({0, 0}, -1.0),
               util::InvalidArgument);
  EXPECT_THROW(uniform_grid_prior(geo::BoundingBox({0, 0}, {1, 1}), 0),
               util::InvalidArgument);
}

}  // namespace
}  // namespace privlocad::lppm
