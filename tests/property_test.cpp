// Cross-module property suites (parameterized sweeps).
//
// These tests pin down the *relationships* the paper's analysis depends
// on, across the whole parameter grid the evaluation uses -- rather than
// spot values: calibration monotonicity, mechanism displacement quantiles,
// utilization monotonicity in n, attack error scaling, selection-sharpness
// invariance, and eta-frequent minimality under random profiles.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <span>
#include <utility>

#include "attack/clustering.hpp"
#include "attack/deobfuscation.hpp"
#include "attack/profile.hpp"
#include "core/eta_frequent.hpp"
#include "core/output_selection.hpp"
#include "core/profile_merge.hpp"
#include "geo/grid_index.hpp"
#include "lppm/baselines.hpp"
#include "lppm/gaussian.hpp"
#include "lppm/planar_laplace.hpp"
#include "opt/simplex.hpp"
#include "rng/engine.hpp"
#include "rng/samplers.hpp"
#include "simd/dispatch.hpp"
#include "simd/kernels.hpp"
#include "simd/soa.hpp"
#include "stats/quantiles.hpp"
#include "stats/running_stats.hpp"
#include "utility/metrics.hpp"

namespace privlocad {
namespace {

lppm::BoundedGeoIndParams make_params(std::size_t n, double eps, double r) {
  lppm::BoundedGeoIndParams p;
  p.n = n;
  p.epsilon = eps;
  p.radius_m = r;
  p.delta = 0.01;
  return p;
}

// ------------------------------------------------- calibration monotonicity

struct CalibCase {
  double eps;
  double r;
};

class CalibrationMonotonicity : public ::testing::TestWithParam<CalibCase> {};

TEST_P(CalibrationMonotonicity, SigmaGrowsAsSqrtN) {
  const auto& [eps, r] = GetParam();
  double prev_ratio = 0.0;
  for (std::size_t n = 1; n <= 10; ++n) {
    const double sigma = lppm::n_fold_sigma(make_params(n, eps, r));
    const double expected =
        std::sqrt(static_cast<double>(n)) *
        lppm::one_fold_sigma(r, eps, 0.01);
    EXPECT_NEAR(sigma, expected, 1e-9);
    // composition sigma must dominate n-fold for n >= 2 and the gap widens
    const double comp = lppm::composition_sigma(make_params(n, eps, r));
    const double ratio = comp / sigma;
    if (n == 1) {
      EXPECT_NEAR(ratio, 1.0, 1e-12);
    } else {
      EXPECT_GT(ratio, prev_ratio);
    }
    prev_ratio = ratio;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, CalibrationMonotonicity,
    ::testing::Values(CalibCase{1.0, 500.0}, CalibCase{1.5, 500.0},
                      CalibCase{1.0, 800.0}, CalibCase{0.5, 600.0}));

// ----------------------------------------- mechanism displacement quantiles

class DisplacementQuantiles
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DisplacementQuantiles, EmpiricalQuantilesMatchRayleigh) {
  const auto [eps, r] = GetParam();
  const lppm::NFoldGaussianMechanism mech(make_params(1, eps, r));
  rng::Engine e(11);
  std::vector<double> displacements;
  constexpr int kN = 8000;
  displacements.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    displacements.push_back(geo::norm(mech.obfuscate(e, {0, 0})[0]));
  }
  // Median of Rayleigh(sigma) is sigma * sqrt(2 ln 2).
  const double median = stats::quantile(displacements, 0.5);
  const double expected = mech.sigma() * std::sqrt(2.0 * std::log(2.0));
  EXPECT_NEAR(median / expected, 1.0, 0.05);
  // 95th percentile matches tail_radius(0.05).
  const double p95 = stats::quantile(displacements, 0.95);
  EXPECT_NEAR(p95 / mech.tail_radius(0.05), 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    EpsRadiusGrid, DisplacementQuantiles,
    ::testing::Combine(::testing::Values(1.0, 1.5),
                       ::testing::Values(500.0, 800.0)));

// ------------------------------------------------ UR monotonicity in n

class UrMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(UrMonotonicity, NFoldUtilizationRisesWithN) {
  const double eps = GetParam();
  double prev = 0.0;
  for (const std::size_t n : {1u, 3u, 6u, 10u}) {
    const lppm::NFoldGaussianMechanism mech(make_params(n, eps, 500.0));
    const rng::Engine parent(23);
    stats::RunningStats ur;
    for (int t = 0; t < 600; ++t) {
      rng::Engine e = parent.split(t);
      const auto candidates = mech.obfuscate(e, {0, 0});
      ur.add(utility::utilization_rate(e, {0, 0}, candidates, 5000.0, 128));
    }
    EXPECT_GT(ur.mean(), prev - 0.02) << "n = " << n;  // allow MC noise
    prev = ur.mean();
  }
  EXPECT_GT(prev, 0.85);  // n = 10 reaches high coverage for both eps
}

INSTANTIATE_TEST_SUITE_P(EpsSweep, UrMonotonicity,
                         ::testing::Values(1.0, 1.5));

// -------------------------------------------- attack error ~ 1/sqrt(N) law

class AttackScaling : public ::testing::TestWithParam<double> {};

TEST_P(AttackScaling, ErrorShrinksRoughlyAsSqrtN) {
  const double level = GetParam();
  const lppm::PlanarLaplaceMechanism mech({level, 200.0});
  attack::DeobfuscationConfig config;
  config.trim_radius_m = mech.tail_radius(0.05);
  config.connectivity_threshold_m = config.trim_radius_m / 4.0;

  auto mean_error = [&](int observations) {
    stats::RunningStats err;
    for (int rep = 0; rep < 12; ++rep) {
      rng::Engine e(rng::Engine(31).split(rep * 1000 + observations));
      std::vector<geo::Point> observed;
      for (int i = 0; i < observations; ++i) {
        observed.push_back(mech.obfuscate_one(e, {0, 0}));
      }
      const auto inferred =
          attack::deobfuscate_top_locations(observed, config);
      err.add(geo::norm(inferred.at(0).location));
    }
    return err.mean();
  };

  const double e100 = mean_error(100);
  const double e1600 = mean_error(1600);
  // 16x more data -> ~4x less error; accept [2.2x, 7x] for MC noise.
  const double gain = e100 / e1600;
  EXPECT_GT(gain, 2.2) << "level " << level;
  EXPECT_LT(gain, 7.0) << "level " << level;
}

INSTANTIATE_TEST_SUITE_P(LevelSweep, AttackScaling,
                         ::testing::Values(std::log(2.0), std::log(4.0),
                                           std::log(6.0)));

// ------------------------------------- selection invariants across the grid

class SelectionInvariants
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(SelectionInvariants, ProbabilitiesNormalizedAndOrderedByDistance) {
  const auto [n, eps] = GetParam();
  const lppm::NFoldGaussianMechanism mech(make_params(n, eps, 500.0));
  rng::Engine e(41);
  for (int trial = 0; trial < 50; ++trial) {
    const auto candidates = mech.obfuscate(e, {0, 0});
    const auto probs =
        core::selection_probabilities(candidates, mech.posterior_sigma());
    const double sum = std::accumulate(probs.begin(), probs.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9);

    // Weights must be monotone non-increasing in distance-to-centroid.
    const geo::Point mean = geo::centroid(candidates);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      for (std::size_t j = 0; j < candidates.size(); ++j) {
        if (geo::distance(candidates[i], mean) <
            geo::distance(candidates[j], mean) - 1e-9) {
          EXPECT_GE(probs[i], probs[j] - 1e-12);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    NGrid, SelectionInvariants,
    ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{5},
                                         std::size_t{10}),
                       ::testing::Values(1.0, 1.5)));

// ------------------------------------------- eta-frequent random profiles

class EtaFrequentProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EtaFrequentProperty, PrefixIsMinimalAndOrdered) {
  rng::Engine e(GetParam());
  // Random profile: 1..20 entries with random frequencies.
  const std::size_t count = 1 + e.uniform_index(20);
  std::vector<std::uint64_t> freqs;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < count; ++i) {
    freqs.push_back(1 + e.uniform_index(500));
    total += freqs.back();
  }
  std::sort(freqs.rbegin(), freqs.rend());
  std::vector<attack::ProfileEntry> entries;
  for (std::size_t i = 0; i < count; ++i) {
    entries.push_back(
        {{static_cast<double>(i) * 1000.0, 0.0}, freqs[i]});
  }
  const attack::LocationProfile profile(std::move(entries));

  for (const double fraction : {0.2, 0.5, 0.8, 1.0}) {
    const auto set = core::eta_frequent_set_fraction(profile, fraction);
    ASSERT_FALSE(set.empty());
    const auto eta = static_cast<std::uint64_t>(
        std::ceil(fraction * static_cast<double>(total)));
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < set.size(); ++i) {
      sum += set[i].frequency;
      if (i > 0) {
        EXPECT_LE(set[i].frequency, set[i - 1].frequency);
      }
    }
    EXPECT_GE(sum, std::min(eta, total));
    if (set.size() > 1) {
      EXPECT_LT(sum - set.back().frequency, eta);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EtaFrequentProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

// ------------------------------------ profile clustering scale invariance

class ProfileThreshold : public ::testing::TestWithParam<double> {};

TEST_P(ProfileThreshold, JitteredAnchorsCollapseToOneEntryUnderThreshold) {
  const double jitter = GetParam();
  rng::Engine e(77);
  std::vector<geo::Point> check_ins;
  for (int i = 0; i < 200; ++i) {
    check_ins.push_back(geo::Point{0, 0} + rng::gaussian_noise(e, jitter));
  }
  // With jitter well below threshold/2, everything is one cluster.
  const attack::LocationProfile profile =
      attack::build_profile(check_ins, 50.0);
  if (jitter <= 10.0) {
    EXPECT_EQ(profile.size(), 1u);
    EXPECT_EQ(profile.top(0).frequency, 200u);
  } else {
    // Heavier jitter can fragment; the dominant cluster still carries
    // most of the mass.
    EXPECT_GE(profile.top(0).frequency, 150u);
  }
}

INSTANTIATE_TEST_SUITE_P(JitterSweep, ProfileThreshold,
                         ::testing::Values(2.0, 5.0, 10.0, 15.0));

// ------------------------------------------ simplex vs brute-force vertices

class SimplexRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexRandom, MatchesBruteForceVertexEnumerationIn2D) {
  // Random bounded 2-variable LPs: the optimum sits on a vertex of the
  // feasible polygon, so enumerating all constraint-pair intersections
  // (including the axes) gives an independent reference optimum.
  rng::Engine e(GetParam());
  const std::size_t m = 3 + e.uniform_index(4);  // 3..6 inequalities

  opt::LpProblem p;
  p.objective = {e.uniform_in(-5.0, 5.0), e.uniform_in(-5.0, 5.0)};
  p.ub_lhs = opt::Matrix(m + 2, 2);
  p.ub_rhs.assign(m + 2, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    p.ub_lhs.at(r, 0) = e.uniform_in(0.1, 3.0);
    p.ub_lhs.at(r, 1) = e.uniform_in(0.1, 3.0);
    p.ub_rhs[r] = e.uniform_in(1.0, 10.0);
  }
  // Box bounds keep every instance bounded: x <= 20, y <= 20.
  p.ub_lhs.at(m, 0) = 1.0;
  p.ub_rhs[m] = 20.0;
  p.ub_lhs.at(m + 1, 1) = 1.0;
  p.ub_rhs[m + 1] = 20.0;

  const opt::LpSolution solution = opt::solve(p);
  ASSERT_EQ(solution.status, opt::LpStatus::kOptimal);

  // Brute force: candidate vertices are intersections of every pair of
  // constraint lines (plus x=0 / y=0), filtered by feasibility.
  struct Line {
    double a, b, c;  // a x + b y = c
  };
  std::vector<Line> lines{{1, 0, 0}, {0, 1, 0}};
  for (std::size_t r = 0; r < m + 2; ++r) {
    lines.push_back({p.ub_lhs.at(r, 0), p.ub_lhs.at(r, 1), p.ub_rhs[r]});
  }
  auto feasible = [&](double x, double y) {
    if (x < -1e-9 || y < -1e-9) return false;
    for (std::size_t r = 0; r < m + 2; ++r) {
      if (p.ub_lhs.at(r, 0) * x + p.ub_lhs.at(r, 1) * y >
          p.ub_rhs[r] + 1e-7) {
        return false;
      }
    }
    return true;
  };
  double best = 1e300;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (std::size_t j = i + 1; j < lines.size(); ++j) {
      const double det =
          lines[i].a * lines[j].b - lines[j].a * lines[i].b;
      if (std::abs(det) < 1e-12) continue;
      const double x =
          (lines[i].c * lines[j].b - lines[j].c * lines[i].b) / det;
      const double y =
          (lines[i].a * lines[j].c - lines[j].a * lines[i].c) / det;
      if (feasible(x, y)) {
        best = std::min(best,
                        p.objective[0] * x + p.objective[1] * y);
      }
    }
  }
  ASSERT_LT(best, 1e299) << "reference enumeration found no vertex";
  EXPECT_NEAR(solution.objective, best, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandom,
                         ::testing::Range<std::uint64_t>(100, 120));

// ------------------------------------------ profile merge order invariance

TEST(ProfileMergeProperty, OrderOfSlicesDoesNotChangeTheResult) {
  rng::Engine e(321);
  // Three random slices over four real-world places.
  const std::vector<geo::Point> places{{0, 0}, {5000, 0}, {0, 7000},
                                       {-6000, -2000}};
  auto random_slice = [&]() {
    std::vector<attack::ProfileEntry> entries;
    for (const geo::Point& place : places) {
      const auto freq = e.uniform_index(40);
      if (freq == 0) continue;
      // Drift within the merge threshold.
      entries.push_back(
          {place + geo::Point{e.uniform_in(-20, 20), e.uniform_in(-20, 20)},
           freq});
    }
    std::sort(entries.begin(), entries.end(),
              [](const attack::ProfileEntry& a,
                 const attack::ProfileEntry& b) {
                return a.frequency > b.frequency;
              });
    return attack::LocationProfile(std::move(entries));
  };

  const auto s1 = random_slice();
  const auto s2 = random_slice();
  const auto s3 = random_slice();
  const auto abc = core::merge_profiles({s1, s2, s3}, 60.0);
  const auto cba = core::merge_profiles({s3, s2, s1}, 60.0);

  ASSERT_EQ(abc.size(), cba.size());
  EXPECT_EQ(abc.total_frequency(), cba.total_frequency());
  for (std::size_t i = 0; i < abc.size(); ++i) {
    EXPECT_EQ(abc.top(i).frequency, cba.top(i).frequency);
    // Centroids may differ by the weighting order only within drift scale.
    EXPECT_LT(geo::distance(abc.top(i).location, cba.top(i).location),
              60.0);
  }
}

// --------------------------------- scalar vs SIMD kernel bit-agreement
//
// The dispatch contract (simd/dispatch.hpp): switching between the
// scalar and AVX2 kernels changes throughput only -- visit sets, cluster
// assignments, selection posteriors, and noise streams must agree
// BIT-for-bit over randomized point sets, radii, and tombstone masks.
// Every suite below runs the same deterministic workload once per
// dispatch level and compares results with exact double equality. On
// machines (or builds) without AVX2 the suites skip: the scalar path is
// then the only path, and agreement is vacuous.

/// Restores the entry dispatch level on scope exit.
class DispatchGuard {
 public:
  explicit DispatchGuard(simd::DispatchLevel level)
      : previous_(simd::active_dispatch_level()) {
    simd::set_dispatch_level(level);
  }
  ~DispatchGuard() { simd::set_dispatch_level(previous_); }
  DispatchGuard(const DispatchGuard&) = delete;
  DispatchGuard& operator=(const DispatchGuard&) = delete;

 private:
  simd::DispatchLevel previous_;
};

#define SKIP_WITHOUT_AVX2()                                              \
  if (!simd::avx2_available()) {                                         \
    GTEST_SKIP() << "AVX2 unavailable; scalar is the only dispatch "     \
                    "level, agreement is vacuous";                       \
  }

/// Random point cloud with deliberate exact duplicates and exact-tie
/// spacings (duplicates stress the <=/< boundary semantics the
/// clustering relies on).
std::vector<geo::Point> random_cloud(rng::Engine& e, std::size_t n,
                                     double extent) {
  std::vector<geo::Point> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i >= 8 && i % 7 == 0) {
      points.push_back(points[e.uniform_index(points.size())]);  // duplicate
    } else {
      points.push_back({e.uniform_in(-extent, extent),
                        e.uniform_in(-extent, extent)});
    }
  }
  return points;
}

class SimdAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimdAgreement, ForEachWithinVisitsIdenticalSetsInIdenticalOrder) {
  SKIP_WITHOUT_AVX2();
  rng::Engine e(GetParam());
  const std::size_t n = 64 + e.uniform_index(512);
  const std::vector<geo::Point> points = random_cloud(e, n, 600.0);
  const double cell = e.uniform_in(10.0, 120.0);
  const double radius = e.uniform_in(5.0, 250.0);
  geo::GridIndex index(points, cell);
  // Random tombstone mask (~30%), identical for both dispatch levels.
  for (std::size_t i = 0; i < n; ++i) {
    if (e.uniform() < 0.3) index.kill(i);
  }
  // Queries at random offsets AND at exact point positions (exact d2 = 0
  // and duplicate handling must agree too).
  std::vector<geo::Point> queries;
  for (int q = 0; q < 24; ++q) {
    queries.push_back({e.uniform_in(-650.0, 650.0),
                       e.uniform_in(-650.0, 650.0)});
    queries.push_back(points[e.uniform_index(n)]);
  }

  using Visit = std::pair<std::size_t, double>;
  const auto collect = [&](simd::DispatchLevel level) {
    const DispatchGuard guard(level);
    std::vector<std::vector<Visit>> per_query;
    for (const geo::Point& q : queries) {
      std::vector<Visit> visits;
      index.for_each_within(q, radius, [&](std::size_t idx, double d2) {
        visits.emplace_back(idx, d2);
      });
      per_query.push_back(std::move(visits));
    }
    return per_query;
  };

  const auto scalar = collect(simd::DispatchLevel::kScalar);
  const auto avx2 = collect(simd::DispatchLevel::kAvx2);
  ASSERT_EQ(scalar.size(), avx2.size());
  for (std::size_t q = 0; q < scalar.size(); ++q) {
    ASSERT_EQ(scalar[q].size(), avx2[q].size()) << "query " << q;
    for (std::size_t v = 0; v < scalar[q].size(); ++v) {
      EXPECT_EQ(scalar[q][v].first, avx2[q][v].first) << "query " << q;
      // Exact double equality: the d2 bits must match, not just compare
      // equal within a tolerance.
      EXPECT_EQ(scalar[q][v].second, avx2[q][v].second) << "query " << q;
    }
  }
}

TEST_P(SimdAgreement, ConnectivityClustersIdenticalAcrossDispatch) {
  SKIP_WITHOUT_AVX2();
  rng::Engine e(GetParam() + 1000);
  const std::size_t n = 64 + e.uniform_index(512);
  std::vector<geo::Point> points = random_cloud(e, n, 400.0);
  // Exact-tie pairs: dist == threshold exactly, exercising the strict-<
  // boundary the clustering filters on.
  const double threshold = 50.0;
  points.push_back({0.0, 0.0});
  points.push_back({threshold, 0.0});
  points.push_back({threshold / 2, 0.0});

  const auto run = [&](simd::DispatchLevel level) {
    const DispatchGuard guard(level);
    return attack::connectivity_clusters(points, threshold);
  };
  EXPECT_EQ(run(simd::DispatchLevel::kScalar),
            run(simd::DispatchLevel::kAvx2));
}

TEST_P(SimdAgreement, DeobfuscationInferenceIdenticalAcrossDispatch) {
  SKIP_WITHOUT_AVX2();
  rng::Engine e(GetParam() + 2000);
  // Three noisy anchor clusters, the attack's actual input shape.
  std::vector<geo::Point> observed;
  const geo::Point anchors[] = {{0, 0}, {900, 300}, {-400, 700}};
  for (int i = 0; i < 420; ++i) {
    observed.push_back(anchors[i % 3] + rng::gaussian_noise(e, 60.0));
  }
  attack::DeobfuscationConfig config;
  config.trim_radius_m = 150.0;
  config.connectivity_threshold_m = 40.0;
  config.top_n = 3;

  const auto run = [&](simd::DispatchLevel level) {
    const DispatchGuard guard(level);
    return attack::deobfuscate_top_locations(observed, config);
  };
  const auto scalar = run(simd::DispatchLevel::kScalar);
  const auto avx2 = run(simd::DispatchLevel::kAvx2);
  ASSERT_EQ(scalar.size(), avx2.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(scalar[i].location.x, avx2[i].location.x);
    EXPECT_EQ(scalar[i].location.y, avx2[i].location.y);
    EXPECT_EQ(scalar[i].support, avx2[i].support);
  }
}

TEST_P(SimdAgreement, SelectionPosteriorsIdenticalAcrossDispatch) {
  SKIP_WITHOUT_AVX2();
  rng::Engine e(GetParam() + 3000);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + e.uniform_index(33);
    std::vector<geo::Point> candidates;
    for (std::size_t i = 0; i < n; ++i) {
      candidates.push_back({e.uniform_in(-2000.0, 2000.0),
                            e.uniform_in(-2000.0, 2000.0)});
    }
    const double sigma = e.uniform_in(1.0, 400.0);
    const auto run = [&](simd::DispatchLevel level) {
      const DispatchGuard guard(level);
      return core::selection_probabilities(candidates, sigma);
    };
    EXPECT_EQ(run(simd::DispatchLevel::kScalar),
              run(simd::DispatchLevel::kAvx2));
  }
}

TEST_P(SimdAgreement, NoiseStreamsIdenticalAcrossDispatch) {
  SKIP_WITHOUT_AVX2();
  const std::uint64_t seed = GetParam() + 4000;
  const auto run = [&](simd::DispatchLevel level) {
    const DispatchGuard guard(level);
    rng::Engine engine(seed);
    // Deliberately odd/pair-unaligned sizes to cover the vector tail.
    std::vector<geo::Point> out(257);
    rng::fill_gaussian_noise_2d(engine, 85.0, out, {1234.5, -987.25});
    out.resize(out.size() + 3);
    std::span<geo::Point> tail{out.data() + 257, 3};
    rng::fill_gaussian_noise_2d(engine, 85.0, tail);
    return std::pair(out, engine());
  };
  const auto scalar = run(simd::DispatchLevel::kScalar);
  const auto avx2 = run(simd::DispatchLevel::kAvx2);
  EXPECT_EQ(scalar.second, avx2.second);  // engines in lockstep after
  ASSERT_EQ(scalar.first.size(), avx2.first.size());
  for (std::size_t i = 0; i < scalar.first.size(); ++i) {
    EXPECT_EQ(scalar.first[i].x, avx2.first[i].x);
    EXPECT_EQ(scalar.first[i].y, avx2.first[i].y);
  }
}

TEST_P(SimdAgreement, RawScanKernelAgreesAtEveryAlignment) {
  SKIP_WITHOUT_AVX2();
  rng::Engine e(GetParam() + 5000);
  constexpr std::size_t kN = 203;  // not a multiple of 4
  std::vector<double> xs(kN), ys(kN);
  std::vector<std::uint8_t> alive(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    xs[i] = e.uniform_in(-100.0, 100.0);
    ys[i] = e.uniform_in(-100.0, 100.0);
    alive[i] = e.uniform() < 0.7 ? 1 : 0;
  }
  const double qx = e.uniform_in(-100.0, 100.0);
  const double qy = e.uniform_in(-100.0, 100.0);
  const double r2 = e.uniform_in(100.0, 10000.0);
  // Sweep begin offsets so lane alignment and tail lengths all occur.
  for (std::uint32_t begin = 0; begin < 9; ++begin) {
    std::vector<std::uint32_t> slots_s(kN), slots_v(kN);
    std::vector<double> d2_s(kN), d2_v(kN);
    const std::size_t hits_s = simd::scan_slots_within_scalar(
        xs.data(), ys.data(), alive.data(), begin, kN, qx, qy, r2,
        slots_s.data(), d2_s.data());
    const std::size_t hits_v = simd::scan_slots_within_avx2(
        xs.data(), ys.data(), alive.data(), begin, kN, qx, qy, r2,
        slots_v.data(), d2_v.data());
    ASSERT_EQ(hits_s, hits_v) << "begin " << begin;
    for (std::size_t h = 0; h < hits_s; ++h) {
      EXPECT_EQ(slots_s[h], slots_v[h]);
      EXPECT_EQ(d2_s[h], d2_v[h]);
    }
  }
}

TEST_P(SimdAgreement, RawPosteriorKernelAgreesIncludingMax) {
  SKIP_WITHOUT_AVX2();
  rng::Engine e(GetParam() + 6000);
  for (const std::size_t n : {std::size_t{1}, std::size_t{3},
                              std::size_t{4}, std::size_t{7},
                              std::size_t{64}, std::size_t{129}}) {
    std::vector<double> xs(n), ys(n), out_s(n), out_v(n);
    for (std::size_t i = 0; i < n; ++i) {
      xs[i] = e.uniform_in(-500.0, 500.0);
      ys[i] = e.uniform_in(-500.0, 500.0);
    }
    const double mx = e.uniform_in(-500.0, 500.0);
    const double my = e.uniform_in(-500.0, 500.0);
    const double denom = e.uniform_in(1.0, 1e6);
    const double max_s = simd::posterior_log_densities_scalar(
        xs.data(), ys.data(), n, mx, my, denom, out_s.data());
    const double max_v = simd::posterior_log_densities_avx2(
        xs.data(), ys.data(), n, mx, my, denom, out_v.data());
    EXPECT_EQ(max_s, max_v);
    EXPECT_EQ(out_s, out_v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimdAgreement,
                         ::testing::Range<std::uint64_t>(1, 13));

// --------------------------------------- efficacy flatness across n (Fig 9)

TEST(EfficacyFlatness, PosteriorSelectionKeepsEfficacyFlat) {
  // The Fig. 9 property as an invariant: from n = 2 to n = 10 the mean
  // efficacy under posterior selection moves by less than 0.08.
  const rng::Engine parent(53);
  auto mean_efficacy = [&](std::size_t n) {
    const lppm::NFoldGaussianMechanism mech(make_params(n, 1.0, 500.0));
    stats::RunningStats ae;
    for (int t = 0; t < 1500; ++t) {
      rng::Engine e = parent.split(t + n * 100000);
      const auto candidates = mech.obfuscate(e, {0, 0});
      const auto probs =
          core::selection_probabilities(candidates, mech.posterior_sigma());
      ae.add(utility::efficacy_weighted({0, 0}, candidates, probs, 5000.0));
    }
    return ae.mean();
  };
  const double at2 = mean_efficacy(2);
  const double at10 = mean_efficacy(10);
  EXPECT_NEAR(at2, at10, 0.08);
}

}  // namespace
}  // namespace privlocad
