// Tests for obfuscation-table persistence: round trips, permanence across
// a simulated restart, and loud failure on corrupt input.
#include <gtest/gtest.h>

#include <sstream>

#include "core/table_store.hpp"
#include "lppm/gaussian.hpp"
#include "rng/engine.hpp"
#include "util/validation.hpp"

namespace privlocad::core {
namespace {

lppm::BoundedGeoIndParams params(std::size_t n = 5) {
  lppm::BoundedGeoIndParams p;
  p.radius_m = 500.0;
  p.epsilon = 1.0;
  p.delta = 0.01;
  p.n = n;
  return p;
}

TableSnapshot make_snapshot() {
  const lppm::NFoldGaussianMechanism mech(params());
  rng::Engine e(1);
  TableSnapshot tables;
  ObfuscationTable t1(100.0);
  t1.candidates_for(e, mech, {0, 0});
  t1.candidates_for(e, mech, {5000, 0});
  tables.emplace(7, std::move(t1));
  ObfuscationTable t2(100.0);
  t2.candidates_for(e, mech, {-3000, 4000});
  tables.emplace(9, std::move(t2));
  return tables;
}

TEST(TableStore, RoundTripPreservesEverything) {
  const TableSnapshot original = make_snapshot();
  std::ostringstream out;
  save_tables(out, original);
  std::istringstream in(out.str());
  const TableSnapshot loaded = load_tables(in, 100.0);

  ASSERT_EQ(loaded.size(), original.size());
  for (const auto& [user, table] : original) {
    const auto it = loaded.find(user);
    ASSERT_NE(it, loaded.end());
    ASSERT_EQ(it->second.entries().size(), table.entries().size());
    for (std::size_t e = 0; e < table.entries().size(); ++e) {
      const auto& orig = table.entries()[e];
      const auto& back = it->second.entries()[e];
      EXPECT_NEAR(geo::distance(orig.top_location, back.top_location), 0.0,
                  1e-5);
      ASSERT_EQ(orig.candidates.size(), back.candidates.size());
      for (std::size_t c = 0; c < orig.candidates.size(); ++c) {
        EXPECT_NEAR(geo::distance(orig.candidates[c], back.candidates[c]),
                    0.0, 1e-5);
      }
    }
  }
}

TEST(TableStore, RestartDoesNotRegenerate) {
  // The privacy-critical property: after a save/load cycle, a lookup for
  // a known top location must replay the SAVED candidates, not draw fresh
  // noise.
  const lppm::NFoldGaussianMechanism mech(params());
  rng::Engine e(2);
  TableSnapshot before;
  ObfuscationTable table(100.0);
  const std::vector<geo::Point> saved =
      table.candidates_for(e, mech, {1234, -5678});
  before.emplace(1, std::move(table));

  std::ostringstream out;
  save_tables(out, before);
  std::istringstream in(out.str());
  TableSnapshot after = load_tables(in, 100.0);

  rng::Engine different_engine(999);
  const auto& replayed = after.at(1).candidates_for(
      different_engine, mech, {1234, -5678});
  ASSERT_EQ(replayed.size(), saved.size());
  for (std::size_t i = 0; i < saved.size(); ++i) {
    EXPECT_NEAR(geo::distance(replayed[i], saved[i]), 0.0, 1e-5);
  }
}

TEST(TableStore, EmptySnapshotRoundTrips) {
  std::ostringstream out;
  save_tables(out, {});
  std::istringstream in(out.str());
  EXPECT_TRUE(load_tables(in, 100.0).empty());
}

TEST(TableStore, RejectsWrongHeader) {
  std::istringstream in("a,b,c\n1,2,3\n");
  EXPECT_THROW(load_tables(in, 100.0), util::InvalidArgument);
}

TEST(TableStore, RejectsOutOfOrderCandidates) {
  std::istringstream in(
      "user_id,entry_index,top_x,top_y,cand_index,cand_x,cand_y\n"
      "1,0,0,0,1,10,10\n");  // first candidate must have index 0
  EXPECT_THROW(load_tables(in, 100.0), util::InvalidArgument);
}

TEST(TableStore, RejectsInconsistentTopLocation) {
  std::istringstream in(
      "user_id,entry_index,top_x,top_y,cand_index,cand_x,cand_y\n"
      "1,0,0,0,0,10,10\n"
      "1,0,99,99,1,20,20\n");  // same entry, different top
  EXPECT_THROW(load_tables(in, 100.0), util::InvalidArgument);
}

TEST(TableStore, RejectsGapInEntryIndices) {
  std::istringstream in(
      "user_id,entry_index,top_x,top_y,cand_index,cand_x,cand_y\n"
      "1,1,0,0,0,10,10\n");  // entry 0 missing
  EXPECT_THROW(load_tables(in, 100.0), util::InvalidArgument);
}

TEST(TableStore, RejectsMalformedNumbers) {
  std::istringstream in(
      "user_id,entry_index,top_x,top_y,cand_index,cand_x,cand_y\n"
      "1,0,zero,0,0,10,10\n");
  EXPECT_THROW(load_tables(in, 100.0), util::InvalidArgument);
}

TEST(TableStore, MissingFilesThrow) {
  EXPECT_THROW(load_tables_file("/nonexistent/tables.csv", 100.0),
               std::runtime_error);
}

TEST(ObfuscationTable, RestoreValidation) {
  ObfuscationTable table(100.0);
  table.restore({{0, 0}, {{1, 1}, {2, 2}}});
  EXPECT_EQ(table.size(), 1u);
  // Colliding restore (within match radius) must throw.
  EXPECT_THROW(table.restore({{50, 0}, {{3, 3}}}), util::InvalidArgument);
  // Candidate-free restore must throw.
  EXPECT_THROW(table.restore({{9000, 0}, {}}), util::InvalidArgument);
}

}  // namespace
}  // namespace privlocad::core
