// Unit and property tests for the geometry substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "geo/bounding_box.hpp"
#include "geo/circle.hpp"
#include "geo/grid_index.hpp"
#include "geo/latlon.hpp"
#include "geo/point.hpp"
#include "geo/projection.hpp"
#include "util/validation.hpp"

namespace privlocad::geo {
namespace {

// ------------------------------------------------------------------ Point

TEST(Point, ArithmeticOperators) {
  const Point a{1.0, 2.0};
  const Point b{3.0, -1.0};
  EXPECT_EQ(a + b, (Point{4.0, 1.0}));
  EXPECT_EQ(a - b, (Point{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Point{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Point{2.0, 4.0}));
  EXPECT_EQ(a / 2.0, (Point{0.5, 1.0}));
}

TEST(Point, DistanceMatchesPythagoras) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_squared({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(norm({-3, 4}), 5.0);
}

TEST(Point, CentroidOfSymmetricSquareIsCenter) {
  const std::vector<Point> square{{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  const Point c = centroid(square);
  EXPECT_DOUBLE_EQ(c.x, 1.0);
  EXPECT_DOUBLE_EQ(c.y, 1.0);
}

// ----------------------------------------------------------------- LatLon

TEST(LatLon, HaversineKnownDistance) {
  // People's Square to Lujiazui, Shanghai: roughly 4.5 km.
  const LatLon peoples_square{31.2304, 121.4737};
  const LatLon lujiazui{31.2397, 121.4998};
  const double d = haversine_distance(peoples_square, lujiazui);
  EXPECT_GT(d, 2000.0);
  EXPECT_LT(d, 4000.0);
}

TEST(LatLon, HaversineZeroForIdenticalPoints) {
  const LatLon p{31.0, 121.5};
  EXPECT_DOUBLE_EQ(haversine_distance(p, p), 0.0);
}

TEST(LatLon, HaversineIsSymmetric) {
  const LatLon a{30.8, 121.2};
  const LatLon b{31.3, 121.9};
  EXPECT_DOUBLE_EQ(haversine_distance(a, b), haversine_distance(b, a));
}

TEST(LatLon, DegreeRadianRoundTrip) {
  EXPECT_NEAR(rad_to_deg(deg_to_rad(37.5)), 37.5, 1e-12);
  EXPECT_DOUBLE_EQ(deg_to_rad(180.0), std::numbers::pi);
}

// ------------------------------------------------------------- projection

TEST(Projection, OriginMapsToZero) {
  const LocalProjection proj(LatLon{31.0, 121.5});
  const Point origin = proj.to_local(LatLon{31.0, 121.5});
  EXPECT_NEAR(origin.x, 0.0, 1e-9);
  EXPECT_NEAR(origin.y, 0.0, 1e-9);
}

TEST(Projection, RoundTripIsExact) {
  const LocalProjection proj = shanghai_projection();
  const LatLon geo{31.1234, 121.6789};
  const LatLon back = proj.to_geo(proj.to_local(geo));
  EXPECT_NEAR(back.lat_deg, geo.lat_deg, 1e-12);
  EXPECT_NEAR(back.lon_deg, geo.lon_deg, 1e-12);
}

TEST(Projection, RejectsPolarOrigin) {
  EXPECT_THROW(LocalProjection(LatLon{89.5, 0.0}), util::InvalidArgument);
}

// Property sweep: projected Euclidean distance must agree with haversine
// within 0.5% over the whole Shanghai study box.
struct ProjPair {
  LatLon a;
  LatLon b;
};

class ProjectionAccuracy : public ::testing::TestWithParam<ProjPair> {};

TEST_P(ProjectionAccuracy, MatchesHaversineWithinHalfPercent) {
  const LocalProjection proj = shanghai_projection();
  const auto& [a, b] = GetParam();
  const double euclid = distance(proj.to_local(a), proj.to_local(b));
  const double sphere = haversine_distance(a, b);
  ASSERT_GT(sphere, 0.0);
  EXPECT_NEAR(euclid / sphere, 1.0, 0.005);
}

INSTANTIATE_TEST_SUITE_P(
    ShanghaiBox, ProjectionAccuracy,
    ::testing::Values(
        ProjPair{{30.7, 121.0}, {31.4, 122.0}},   // box diagonal
        ProjPair{{30.7, 121.0}, {30.7, 122.0}},   // southern edge
        ProjPair{{31.4, 121.0}, {31.4, 122.0}},   // northern edge
        ProjPair{{30.7, 121.5}, {31.4, 121.5}},   // meridian
        ProjPair{{31.0, 121.4}, {31.0015, 121.4}},  // ~166 m, attack scale
        ProjPair{{31.05, 121.49}, {31.05, 121.51}}));  // ~1.9 km

// ----------------------------------------------------------------- Circle

TEST(Circle, AreaAndContainment) {
  const Circle c({0, 0}, 2.0);
  EXPECT_DOUBLE_EQ(c.area(), std::numbers::pi * 4.0);
  EXPECT_TRUE(c.contains({1.0, 1.0}));
  EXPECT_TRUE(c.contains({2.0, 0.0}));  // boundary counts as inside
  EXPECT_FALSE(c.contains({2.1, 0.0}));
}

TEST(Circle, NegativeRadiusRejected) {
  EXPECT_THROW(Circle({0, 0}, -1.0), util::InvalidArgument);
}

TEST(CircleIntersection, DisjointCirclesHaveZeroArea) {
  const Circle a({0, 0}, 1.0);
  const Circle b({3, 0}, 1.0);
  EXPECT_DOUBLE_EQ(intersection_area(a, b), 0.0);
}

TEST(CircleIntersection, ContainedCircleGivesSmallerArea) {
  const Circle big({0, 0}, 5.0);
  const Circle small({1, 0}, 1.0);
  EXPECT_DOUBLE_EQ(intersection_area(big, small), small.area());
  EXPECT_DOUBLE_EQ(intersection_area(small, big), small.area());
}

TEST(CircleIntersection, CoincidentCirclesGiveFullArea) {
  const Circle a({2, 3}, 4.0);
  EXPECT_NEAR(intersection_area(a, a), a.area(), 1e-9);
  EXPECT_NEAR(overlap_fraction(a, a), 1.0, 1e-12);
}

TEST(CircleIntersection, HalfOffsetEqualRadiiKnownValue) {
  // Two unit circles at distance 1: lens area = 2*pi/3 - sqrt(3)/2.
  const Circle a({0, 0}, 1.0);
  const Circle b({1, 0}, 1.0);
  const double expected = 2.0 * std::numbers::pi / 3.0 - std::sqrt(3.0) / 2.0;
  EXPECT_NEAR(intersection_area(a, b), expected, 1e-12);
}

TEST(CircleIntersection, TangentCirclesHaveZeroArea) {
  const Circle a({0, 0}, 1.0);
  const Circle b({2, 0}, 1.0);
  EXPECT_DOUBLE_EQ(intersection_area(a, b), 0.0);
}

// Property sweep: the lens area must be symmetric, monotone decreasing in
// center distance, and bounded by the smaller circle's area.
class LensProperty : public ::testing::TestWithParam<double> {};

TEST_P(LensProperty, SymmetricBoundedMonotone) {
  const double d = GetParam();
  const Circle a({0, 0}, 5000.0);
  const Circle b({d, 0}, 5000.0);
  const Circle b_next({d + 500.0, 0}, 5000.0);

  const double area = intersection_area(a, b);
  EXPECT_DOUBLE_EQ(area, intersection_area(b, a));
  EXPECT_GE(area, 0.0);
  EXPECT_LE(area, a.area() + 1e-9);
  EXPECT_GE(area, intersection_area(a, b_next) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(DistanceSweep, LensProperty,
                         ::testing::Values(0.0, 500.0, 1000.0, 2500.0, 5000.0,
                                           7500.0, 9999.0, 10000.0, 12000.0));

TEST(OverlapFraction, RequiresPositiveAoiRadius) {
  const Circle degenerate({0, 0}, 0.0);
  const Circle b({1, 0}, 1.0);
  EXPECT_THROW(overlap_fraction(degenerate, b), util::InvalidArgument);
}

// ------------------------------------------------------------ BoundingBox

TEST(BoundingBox, ContainsAndClamp) {
  const BoundingBox box({0, 0}, {10, 5});
  EXPECT_TRUE(box.contains({5, 2}));
  EXPECT_TRUE(box.contains({0, 0}));
  EXPECT_FALSE(box.contains({11, 2}));
  EXPECT_EQ(box.clamp({12, -1}), (Point{10, 0}));
  EXPECT_DOUBLE_EQ(box.width(), 10.0);
  EXPECT_DOUBLE_EQ(box.height(), 5.0);
}

TEST(BoundingBox, RejectsInvertedCorners) {
  EXPECT_THROW(BoundingBox({1, 0}, {0, 1}), util::InvalidArgument);
}

TEST(BoundingBox, ExpandedToCoversNewPoint) {
  const BoundingBox box({0, 0}, {1, 1});
  const BoundingBox bigger = box.expanded_to({5, -2});
  EXPECT_TRUE(bigger.contains({5, -2}));
  EXPECT_TRUE(bigger.contains({0.5, 0.5}));
}

TEST(GeoBox, ShanghaiBoxMatchesPaper) {
  const GeoBox box = shanghai_geo_box();
  EXPECT_TRUE(box.contains(LatLon{31.0, 121.5}));
  EXPECT_FALSE(box.contains(LatLon{32.0, 121.5}));
  EXPECT_FALSE(box.contains(LatLon{31.0, 120.5}));
}

// -------------------------------------------------------------- GridIndex

TEST(GridIndex, FindsExactlyTheNeighborsWithinRadius) {
  const std::vector<Point> points{{0, 0}, {10, 0}, {60, 0}, {0, 45}, {100, 100}};
  const GridIndex index(points, 50.0);
  const auto hits = index.within({0, 0}, 50.0);
  // {0,0}, {10,0}, {0,45} are within 50 m; {60,0} and {100,100} are not.
  EXPECT_EQ(hits.size(), 3u);
}

TEST(GridIndex, RadiusLargerThanCellStillCorrect) {
  const std::vector<Point> points{{0, 0}, {120, 0}, {240, 0}};
  const GridIndex index(points, 50.0);
  EXPECT_EQ(index.within({0, 0}, 130.0).size(), 2u);
  EXPECT_EQ(index.within({0, 0}, 250.0).size(), 3u);
}

TEST(GridIndex, NegativeCoordinatesHandled) {
  const std::vector<Point> points{{-75, -75}, {-25, -25}, {25, 25}};
  const GridIndex index(points, 50.0);
  EXPECT_EQ(index.within({-50, -50}, 40.0).size(), 2u);
}

TEST(GridIndex, RejectsNonPositiveCellSize) {
  EXPECT_THROW(GridIndex({{0, 0}}, 0.0), util::InvalidArgument);
}

// Property: brute force and grid index agree on a pseudo-random cloud.
TEST(GridIndex, AgreesWithBruteForce) {
  std::vector<Point> points;
  // Deterministic low-discrepancy-ish cloud, no RNG dependency in geo tests.
  for (int i = 0; i < 500; ++i) {
    const double x = std::fmod(i * 127.3, 1000.0) - 500.0;
    const double y = std::fmod(i * 311.7, 1000.0) - 500.0;
    points.push_back({x, y});
  }
  const GridIndex index(points, 50.0);
  const Point query{13.0, -42.0};
  const double radius = 75.0;

  std::size_t brute = 0;
  for (const Point& p : points) {
    if (distance(p, query) <= radius) ++brute;
  }
  EXPECT_EQ(index.within(query, radius).size(), brute);
}

// ----------------------------------------------- GridIndex tombstoning

TEST(GridIndex, KilledPointsDisappearFromQueries) {
  const std::vector<Point> points{{0, 0}, {10, 0}, {20, 0}, {200, 200}};
  GridIndex index(points, 50.0);
  EXPECT_EQ(index.within({0, 0}, 30.0).size(), 3u);

  index.kill(1);
  EXPECT_FALSE(index.alive(1));
  EXPECT_TRUE(index.alive(0));
  const auto hits = index.within({0, 0}, 30.0);
  EXPECT_EQ(hits.size(), 2u);
  for (const std::size_t i : hits) EXPECT_NE(i, 1u);
}

TEST(GridIndex, ReviveAllRestoresEveryPoint) {
  const std::vector<Point> points{{0, 0}, {10, 0}, {20, 0}};
  GridIndex index(points, 50.0);
  index.kill(0);
  index.kill(2);
  EXPECT_EQ(index.within({0, 0}, 30.0).size(), 1u);
  index.revive_all();
  EXPECT_EQ(index.within({0, 0}, 30.0).size(), 3u);
  EXPECT_TRUE(index.alive(0));
  EXPECT_TRUE(index.alive(2));
}

TEST(GridIndex, TombstonesMatchBruteForceFilter) {
  std::vector<Point> points;
  for (int i = 0; i < 400; ++i) {
    points.push_back({std::fmod(i * 127.3, 800.0) - 400.0,
                      std::fmod(i * 311.7, 800.0) - 400.0});
  }
  GridIndex index(points, 60.0);
  for (std::size_t i = 0; i < points.size(); i += 3) index.kill(i);

  const Point query{-7.0, 31.0};
  const double radius = 90.0;
  std::size_t brute = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i % 3 != 0 && distance(points[i], query) <= radius) ++brute;
  }
  EXPECT_EQ(index.within(query, radius).size(), brute);
}

TEST(GridIndex, RebuildReplacesContentsAndRevives) {
  GridIndex index({{0, 0}, {10, 0}}, 50.0);
  index.kill(0);
  // Rebuild with a different cloud (and different cell size): old
  // tombstones must not leak into the new generation.
  index.rebuild({{5, 5}, {15, 5}, {500, 500}}, 40.0);
  EXPECT_EQ(index.size(), 3u);
  EXPECT_TRUE(index.alive(0));
  EXPECT_EQ(index.within({5, 5}, 20.0).size(), 2u);
  EXPECT_THROW(index.rebuild({{0, 0}}, 0.0), util::InvalidArgument);
}

TEST(GridIndex, DefaultConstructedThenRebuilt) {
  GridIndex index;
  EXPECT_EQ(index.size(), 0u);
  index.rebuild({{0, 0}, {25, 0}}, 30.0);
  EXPECT_EQ(index.within({0, 0}, 26.0).size(), 2u);
}

}  // namespace
}  // namespace privlocad::geo
