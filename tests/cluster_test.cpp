// Tests for multi-edge deployment: profile merging across edge devices and
// the cell-sharded edge cluster.
#include <gtest/gtest.h>

#include "core/edge_cluster.hpp"
#include "core/profile_merge.hpp"
#include "util/validation.hpp"

namespace privlocad::core {
namespace {

attack::LocationProfile make_profile(
    std::vector<std::pair<geo::Point, std::uint64_t>> raw) {
  std::sort(raw.begin(), raw.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<attack::ProfileEntry> entries;
  for (const auto& [p, f] : raw) entries.push_back({p, f});
  return attack::LocationProfile(std::move(entries));
}

// ------------------------------------------------------------ merge logic

TEST(ProfileMerge, EmptyInputYieldsEmptyProfile) {
  const auto merged = merge_profiles({});
  EXPECT_TRUE(merged.empty());
}

TEST(ProfileMerge, SingleSliceIsIdentity) {
  const auto slice = make_profile({{{0, 0}, 10}, {{5000, 0}, 4}});
  const auto merged = merge_profiles({slice});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.top(0).frequency, 10u);
  EXPECT_EQ(merged.top(1).frequency, 4u);
}

TEST(ProfileMerge, CoalescesSameLocationAcrossSlices) {
  // Two edges saw the same home with slightly drifted centroids.
  const auto edge_a = make_profile({{{0, 0}, 30}});
  const auto edge_b = make_profile({{{20, 0}, 10}});
  const auto merged = merge_profiles({edge_a, edge_b}, 50.0);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged.top(0).frequency, 40u);
  // Frequency-weighted centroid: (30*0 + 10*20) / 40 = 5.
  EXPECT_NEAR(merged.top(0).location.x, 5.0, 1e-9);
}

TEST(ProfileMerge, KeepsDistantLocationsSeparate) {
  const auto edge_a = make_profile({{{0, 0}, 30}});
  const auto edge_b = make_profile({{{5000, 0}, 50}});
  const auto merged = merge_profiles({edge_a, edge_b}, 50.0);
  ASSERT_EQ(merged.size(), 2u);
  // Re-sorted: the 50-visit location wins rank 0.
  EXPECT_EQ(merged.top(0).frequency, 50u);
  EXPECT_NEAR(merged.top(0).location.x, 5000.0, 1e-9);
}

TEST(ProfileMerge, TotalFrequencyIsConserved) {
  const auto a = make_profile({{{0, 0}, 12}, {{3000, 0}, 5}});
  const auto b = make_profile({{{10, 10}, 7}, {{-4000, 2}, 9}});
  const auto c = make_profile({{{2990, 5}, 3}});
  const auto merged = merge_profiles({a, b, c}, 50.0);
  EXPECT_EQ(merged.total_frequency(), 12u + 5u + 7u + 9u + 3u);
}

TEST(ProfileMerge, MergedEntropyMatchesGlobalProfile) {
  // Merging slices of one ground truth must reproduce the global profile's
  // entropy (the property the eta-frequent computation depends on).
  const auto a = make_profile({{{0, 0}, 50}});
  const auto b = make_profile({{{0, 0}, 50}, {{8000, 0}, 100}});
  const auto merged = merge_profiles({a, b}, 50.0);
  const auto global = make_profile({{{0, 0}, 100}, {{8000, 0}, 100}});
  EXPECT_NEAR(merged.entropy(), global.entropy(), 1e-12);
}

TEST(ProfileMerge, RejectsNonPositiveThreshold) {
  EXPECT_THROW(merge_profiles({}, 0.0), util::InvalidArgument);
}

// ------------------------------------------------------------ edge cluster

EdgeClusterConfig cluster_config() {
  EdgeClusterConfig c;
  c.edge.top_params.radius_m = 500.0;
  c.edge.top_params.epsilon = 1.0;
  c.edge.top_params.delta = 0.01;
  c.edge.top_params.n = 10;
  c.edge.management.window_seconds = 1000;
  c.cell_size_m = 10000.0;
  return c;
}

TEST(EdgeCluster, RoutesRequestsToCellDevices) {
  EdgeCluster cluster(cluster_config().with_seed(1));
  cluster.report_location(1, {1000, 1000}, 0);     // cell (0, 0)
  cluster.report_location(1, {15000, 1000}, 1);    // cell (1, 0)
  cluster.report_location(2, {1000, 1000}, 2);     // cell (0, 0)
  EXPECT_EQ(cluster.active_devices(), 2u);
  EXPECT_EQ(cluster.requests_served(0, 0), 2u);
  EXPECT_EQ(cluster.requests_served(1, 0), 1u);
  EXPECT_EQ(cluster.requests_served(5, 5), 0u);
}

TEST(EdgeCluster, NegativeCoordinatesGetOwnCells) {
  EdgeCluster cluster(cluster_config().with_seed(2));
  cluster.report_location(1, {-1000, -1000}, 0);   // cell (-1, -1)
  cluster.report_location(1, {1000, 1000}, 1);     // cell (0, 0)
  EXPECT_EQ(cluster.active_devices(), 2u);
  EXPECT_EQ(cluster.requests_served(-1, -1), 1u);
}

TEST(EdgeCluster, CellLoadsCoverEveryActiveCell) {
  // Load stats must see devices however far out the population wandered --
  // including cells far outside any fixed scan window like [-4, 4].
  EdgeCluster cluster(cluster_config().with_seed(7));
  cluster.report_location(1, {1000, 1000}, 0);       // cell (0, 0)
  cluster.report_location(1, {1500, 1200}, 1);       // cell (0, 0)
  cluster.report_location(2, {-95000, 1000}, 2);     // cell (-10, 0)
  cluster.report_location(3, {250000, 250000}, 3);   // cell (25, 25)

  const std::vector<EdgeCluster::CellLoad> loads = cluster.cell_loads();
  ASSERT_EQ(loads.size(), 3u);
  // Sorted by (cx, cy).
  EXPECT_EQ(loads[0].cx, -10);
  EXPECT_EQ(loads[0].cy, 0);
  EXPECT_EQ(loads[0].requests, 1u);
  EXPECT_EQ(loads[1].cx, 0);
  EXPECT_EQ(loads[1].requests, 2u);
  EXPECT_EQ(loads[2].cx, 25);
  EXPECT_EQ(loads[2].cy, 25);

  std::size_t total = 0;
  for (const auto& cell : loads) total += cell.requests;
  EXPECT_EQ(total, 4u);
}

TEST(EdgeCluster, DeviceForIsStablePerCell) {
  EdgeCluster cluster(cluster_config().with_seed(3));
  EdgeDevice& a = cluster.device_for({100, 100});
  EdgeDevice& b = cluster.device_for({9000, 9000});  // same 10 km cell
  EdgeDevice& c = cluster.device_for({11000, 100});  // next cell
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
}

TEST(EdgeCluster, LocalSlicesMergeIntoGlobalTopSet) {
  // A commuter splits check-ins between two cells; each device only sees
  // its slice. Merging the slices recovers both top locations globally.
  EdgeCluster cluster(cluster_config().with_seed(4));
  const geo::Point home{1000, 1000};     // cell (0, 0)
  const geo::Point office{15000, 1000};  // cell (1, 0)

  trace::UserTrace home_hist, office_hist;
  home_hist.user_id = office_hist.user_id = 9;
  for (int i = 0; i < 40; ++i) home_hist.check_ins.push_back({home, i});
  for (int i = 0; i < 20; ++i) office_hist.check_ins.push_back({office, i});

  cluster.device_for(home).import_history(9, home_hist);
  cluster.device_for(office).import_history(9, office_hist);

  // Each device's eta-frequent set is one local slice of the profile.
  std::vector<attack::LocationProfile> slices;
  for (const geo::Point where : {home, office}) {
    auto entries = cluster.device_for(where).top_locations(9);
    slices.emplace_back(std::move(entries));
  }
  const attack::LocationProfile global = merge_profiles(slices, 50.0);

  ASSERT_EQ(global.size(), 2u);
  EXPECT_EQ(global.top(0).frequency, 40u);
  EXPECT_EQ(global.top(1).frequency, 20u);
  EXPECT_LT(geo::distance(global.top(0).location, home), 1.0);
  EXPECT_LT(geo::distance(global.top(1).location, office), 1.0);
}

TEST(EdgeCluster, FilterAdsMatchesDeviceSemantics) {
  EdgeCluster cluster(cluster_config().with_seed(5));
  std::vector<adnet::Ad> ads{{1, {1000, 0}, "a", 1.0},
                             {2, {30000, 0}, "b", 1.0}};
  const auto kept = cluster.filter_ads(ads, {0, 0});
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].advertiser_id, 1u);
}

TEST(EdgeCluster, RejectsBadCellSize) {
  EdgeClusterConfig bad = cluster_config();
  bad.cell_size_m = 0.0;
  EXPECT_THROW(EdgeCluster(bad.with_seed(1)), util::InvalidArgument);
}

}  // namespace
}  // namespace privlocad::core
