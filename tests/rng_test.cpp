// Unit and property tests for the randomness substrate: engine determinism,
// Lambert W accuracy, and the inverse-CDF samplers the paper's mechanisms
// are built on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "geo/point.hpp"
#include "rng/engine.hpp"
#include "rng/lambert_w.hpp"
#include "rng/samplers.hpp"
#include "rng/ziggurat.hpp"
#include "util/validation.hpp"

namespace privlocad::rng {
namespace {

// ----------------------------------------------------------------- Engine

TEST(Engine, DeterministicForSameSeed) {
  Engine a(123);
  Engine b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Engine, DifferentSeedsDiverge) {
  Engine a(1);
  Engine b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Engine, SplitStreamsAreIndependentAndDeterministic) {
  const Engine parent(99);
  Engine child_a = parent.split(7);
  Engine child_a2 = parent.split(7);
  Engine child_b = parent.split(8);
  EXPECT_EQ(child_a(), child_a2());
  EXPECT_NE(child_a(), child_b());
}

TEST(Engine, UniformStaysInHalfOpenUnitInterval) {
  Engine e(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = e.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Engine, UniformPositiveNeverReturnsZero) {
  Engine e(6);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(e.uniform_positive(), 0.0);
}

TEST(Engine, UniformMeanNearHalf) {
  Engine e(7);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += e.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.005);
}

TEST(Engine, UniformInRange) {
  Engine e(8);
  for (int i = 0; i < 1000; ++i) {
    const double v = e.uniform_in(-3.0, 2.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 2.0);
  }
  EXPECT_THROW(e.uniform_in(2.0, 2.0), util::InvalidArgument);
}

TEST(Engine, UniformIndexUnbiasedSupport) {
  Engine e(9);
  std::vector<int> counts(5, 0);
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) ++counts[e.uniform_index(5)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 0.2, 0.02);
  }
  EXPECT_THROW(e.uniform_index(0), util::InvalidArgument);
}

TEST(SplitMix, MatchesReferenceVector) {
  // Reference values for seed 0 from the published SplitMix64 code.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64(state), 0x6E789E6AA1B965F4ULL);
}

// --------------------------------------------------------------- LambertW

TEST(LambertW, DefiningIdentityBranch0) {
  for (const double x : {-0.36, -0.2, -0.05, 0.5, 1.0, 10.0, 1e4}) {
    const double w = lambert_w0(x);
    EXPECT_NEAR(w * std::exp(w), x, 1e-10 * std::max(1.0, std::abs(x)))
        << "x = " << x;
  }
}

TEST(LambertW, DefiningIdentityBranchM1) {
  for (const double x : {-0.367, -0.35, -0.2, -0.1, -0.01, -1e-6}) {
    const double w = lambert_wm1(x);
    EXPECT_NEAR(w * std::exp(w), x, 1e-10) << "x = " << x;
    EXPECT_LE(w, -1.0 + 1e-9);  // branch -1 lives in (-inf, -1]
  }
}

TEST(LambertW, BranchPointValue) {
  const double inv_e = 1.0 / std::numbers::e;
  EXPECT_NEAR(lambert_w0(-inv_e + 1e-12), -1.0, 1e-4);
  EXPECT_NEAR(lambert_wm1(-inv_e + 1e-12), -1.0, 1e-4);
}

TEST(LambertW, KnownValues) {
  EXPECT_NEAR(lambert_w0(1.0), 0.5671432904097838, 1e-12);  // Omega constant
  EXPECT_NEAR(lambert_w0(std::numbers::e), 1.0, 1e-12);
  EXPECT_NEAR(lambert_wm1(-2.0 * std::exp(-2.0)), -2.0, 1e-10);
}

TEST(LambertW, DomainErrors) {
  EXPECT_THROW(lambert_w0(-1.0), util::InvalidArgument);
  EXPECT_THROW(lambert_wm1(0.0), util::InvalidArgument);
  EXPECT_THROW(lambert_wm1(0.5), util::InvalidArgument);
  EXPECT_THROW(lambert_wm1(-1.0), util::InvalidArgument);
}

// --------------------------------------------------------- normal sampler

TEST(NormalQuantile, MatchesKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(normal_quantile(0.025), -1.959963984540054, 1e-9);
  EXPECT_NEAR(normal_quantile(0.8413447460685429), 1.0, 1e-9);
}

TEST(NormalQuantile, InverseOfErfcCdf) {
  for (const double p : {0.001, 0.01, 0.1, 0.3, 0.7, 0.9, 0.99, 0.999}) {
    const double x = normal_quantile(p);
    const double cdf = 0.5 * std::erfc(-x / std::numbers::sqrt2);
    EXPECT_NEAR(cdf, p, 1e-12) << "p = " << p;
  }
}

TEST(NormalQuantile, DomainErrors) {
  EXPECT_THROW(normal_quantile(0.0), util::InvalidArgument);
  EXPECT_THROW(normal_quantile(1.0), util::InvalidArgument);
}

TEST(StandardNormal, MomentsMatch) {
  Engine e(11);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double z = standard_normal(e);
    sum += z;
    sum2 += z * z;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.01);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.02);
}

TEST(Normal, ShiftAndScale) {
  Engine e(12);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += normal(e, 10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.05);
  EXPECT_THROW(normal(e, 0.0, -1.0), util::InvalidArgument);
}

// -------------------------------------------------- polar Gaussian sampler

TEST(RayleighQuantile, MatchesClosedForm) {
  // F(r) = 1 - exp(-r^2 / (2 sigma^2)); check F(F^{-1}(s)) == s.
  const double sigma = 300.0;
  for (const double s : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    const double r = rayleigh_quantile(s, sigma);
    const double cdf = 1.0 - std::exp(-r * r / (2.0 * sigma * sigma));
    EXPECT_NEAR(cdf, s, 1e-12);
  }
}

TEST(GaussianNoise, MarginalsAreGaussianWithRequestedSigma) {
  Engine e(13);
  const double sigma = 250.0;
  double sx = 0.0, sx2 = 0.0, sy = 0.0, sy2 = 0.0, sxy = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const geo::Point p = gaussian_noise(e, sigma);
    sx += p.x;
    sy += p.y;
    sx2 += p.x * p.x;
    sy2 += p.y * p.y;
    sxy += p.x * p.y;
  }
  EXPECT_NEAR(sx / kN, 0.0, 2.0);
  EXPECT_NEAR(sy / kN, 0.0, 2.0);
  EXPECT_NEAR(std::sqrt(sx2 / kN), sigma, sigma * 0.02);
  EXPECT_NEAR(std::sqrt(sy2 / kN), sigma, sigma * 0.02);
  EXPECT_NEAR(sxy / kN / (sigma * sigma), 0.0, 0.02);  // uncorrelated
}

TEST(GaussianNoise, ZeroSigmaIsDeterministicOrigin) {
  Engine e(14);
  const geo::Point p = gaussian_noise(e, 0.0);
  EXPECT_DOUBLE_EQ(p.x, 0.0);
  EXPECT_DOUBLE_EQ(p.y, 0.0);
}

// ------------------------------------------------- planar Laplace sampler

TEST(PlanarLaplace, QuantileInvertsCdf) {
  const double eps = std::log(4.0) / 200.0;  // the paper's l=ln4, r=200m
  for (const double p : {0.05, 0.25, 0.5, 0.75, 0.95, 0.999}) {
    const double r = planar_laplace_radius_quantile(p, eps);
    EXPECT_NEAR(planar_laplace_radius_cdf(r, eps), p, 1e-10) << "p = " << p;
  }
}

TEST(PlanarLaplace, QuantileAtZeroIsZero) {
  EXPECT_DOUBLE_EQ(planar_laplace_radius_quantile(0.0, 0.01), 0.0);
}

TEST(PlanarLaplace, MeanRadiusIsTwoOverEpsilon) {
  // The radial density (eps^2 r e^{-eps r}) is Gamma(2, 1/eps): mean 2/eps.
  Engine e(15);
  const double eps = 0.01;
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    sum += geo::norm(planar_laplace_noise(e, eps));
  }
  EXPECT_NEAR(sum / kN, 2.0 / eps, 2.0 / eps * 0.02);
}

TEST(PlanarLaplace, AngleIsUniform) {
  Engine e(16);
  const double eps = 0.01;
  int quadrant[4] = {0, 0, 0, 0};
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) {
    const geo::Point p = planar_laplace_noise(e, eps);
    const int q = (p.x >= 0 ? 0 : 1) + (p.y >= 0 ? 0 : 2);
    ++quadrant[q];
  }
  for (const int c : quadrant) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 0.25, 0.02);
  }
}

TEST(PlanarLaplace, InvalidParametersRejected) {
  Engine e(17);
  EXPECT_THROW(planar_laplace_noise(e, 0.0), util::InvalidArgument);
  EXPECT_THROW(planar_laplace_radius_quantile(1.0, 0.01),
               util::InvalidArgument);
  EXPECT_THROW(planar_laplace_radius_cdf(-1.0, 0.01), util::InvalidArgument);
}

// ---------------------------------------------------------- uniform disk

TEST(UniformDisk, StaysInDiskAndAreaUniform) {
  Engine e(18);
  const double radius = 100.0;
  int inside_half_radius = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const geo::Point p = uniform_in_disk(e, radius);
    ASSERT_LE(geo::norm(p), radius + 1e-9);
    if (geo::norm(p) <= radius / 2.0) ++inside_half_radius;
  }
  // Area-uniform: the half-radius disk holds 1/4 of the mass.
  EXPECT_NEAR(static_cast<double>(inside_half_radius) / kN, 0.25, 0.01);
}

// ----------------------------------------------- distributional hygiene

TEST(Engine, UniformPassesChiSquareOnBytes) {
  // Chi-square goodness of fit over 256 buckets of the top byte.
  Engine e(101);
  constexpr int kN = 256000;
  std::vector<int> counts(256, 0);
  for (int i = 0; i < kN; ++i) ++counts[e() >> 56];
  const double expected = kN / 256.0;
  double chi2 = 0.0;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 255 dof: mean 255, std ~22.6; accept within ~5 sigma.
  EXPECT_GT(chi2, 255.0 - 5.0 * 22.6);
  EXPECT_LT(chi2, 255.0 + 5.0 * 22.6);
}

TEST(Engine, SplitStreamsAreDecorrelated) {
  // Correlation between sibling streams must be negligible.
  const Engine parent(77);
  Engine a = parent.split(1);
  Engine b = parent.split(2);
  double sum_ab = 0.0, sum_a = 0.0, sum_b = 0.0, sum_a2 = 0.0, sum_b2 = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double x = a.uniform();
    const double y = b.uniform();
    sum_a += x;
    sum_b += y;
    sum_ab += x * y;
    sum_a2 += x * x;
    sum_b2 += y * y;
  }
  const double cov = sum_ab / kN - (sum_a / kN) * (sum_b / kN);
  const double var_a = sum_a2 / kN - (sum_a / kN) * (sum_a / kN);
  const double var_b = sum_b2 / kN - (sum_b / kN) * (sum_b / kN);
  EXPECT_LT(std::abs(cov / std::sqrt(var_a * var_b)), 0.02);
}

TEST(PlanarLaplace, QuantileIsMonotoneInP) {
  const double eps = 0.005;
  double prev = -1.0;
  for (double p = 0.01; p < 1.0; p += 0.01) {
    const double r = planar_laplace_radius_quantile(p, eps);
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST(PlanarLaplace, QuantileScalesInverselyWithEpsilon) {
  // r_p(eps) = r_p(1) / eps exactly, by the change of variables.
  const double p = 0.7;
  const double base = planar_laplace_radius_quantile(p, 1.0);
  for (const double eps : {0.5, 2.0, 10.0}) {
    EXPECT_NEAR(planar_laplace_radius_quantile(p, eps), base / eps,
                1e-9 * base / eps);
  }
}

TEST(RayleighQuantile, MedianMatchesClosedForm) {
  EXPECT_NEAR(rayleigh_quantile(0.5, 100.0),
              100.0 * std::sqrt(2.0 * std::log(2.0)), 1e-9);
}

// ------------------------- property sweep: sampler CDFs via KS statistic

struct KsCase {
  const char* name;
  double param;
};

class GaussianRadiusKs : public ::testing::TestWithParam<double> {};

TEST_P(GaussianRadiusKs, RadialCdfMatchesRayleigh) {
  const double sigma = GetParam();
  Engine e(21);
  constexpr int kN = 20000;
  std::vector<double> radii;
  radii.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    radii.push_back(geo::norm(gaussian_noise(e, sigma)));
  }
  std::sort(radii.begin(), radii.end());
  double worst = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double ref =
        1.0 - std::exp(-radii[i] * radii[i] / (2.0 * sigma * sigma));
    const double emp_hi = static_cast<double>(i + 1) / kN;
    const double emp_lo = static_cast<double>(i) / kN;
    worst = std::max({worst, std::abs(emp_hi - ref), std::abs(ref - emp_lo)});
  }
  // KS 1% critical value for n=20000 is ~0.0115.
  EXPECT_LT(worst, 0.0115) << "sigma = " << sigma;
}

INSTANTIATE_TEST_SUITE_P(SigmaSweep, GaussianRadiusKs,
                         ::testing::Values(10.0, 100.0, 500.0, 2000.0));

// --------------------------------------- ziggurat sampler + batched fills

/// RAII save/restore of the process-wide sampler so tests that flip it
/// cannot leak the choice into later tests.
class SamplerGuard {
 public:
  explicit SamplerGuard(NormalSampler sampler)
      : saved_(default_normal_sampler()) {
    set_default_normal_sampler(sampler);
  }
  ~SamplerGuard() { set_default_normal_sampler(saved_); }
  SamplerGuard(const SamplerGuard&) = delete;
  SamplerGuard& operator=(const SamplerGuard&) = delete;

 private:
  NormalSampler saved_;
};

struct Moments {
  double mean;
  double variance;
  double excess_kurtosis;
};

Moments sample_moments(NormalSampler sampler, std::uint64_t seed, int n) {
  Engine e(seed);
  std::vector<double> buffer(4096);
  double s1 = 0.0, s2 = 0.0, s4 = 0.0;
  int remaining = n;
  while (remaining > 0) {
    const std::size_t chunk =
        std::min<std::size_t>(buffer.size(), static_cast<std::size_t>(remaining));
    fill_standard_normal(e, {buffer.data(), chunk}, sampler);
    for (std::size_t i = 0; i < chunk; ++i) {
      const double z = buffer[i];
      s1 += z;
      s2 += z * z;
      s4 += z * z * z * z;
    }
    remaining -= static_cast<int>(chunk);
  }
  const double mean = s1 / n;
  const double variance = s2 / n - mean * mean;
  const double kurtosis = (s4 / n) / (variance * variance) - 3.0;
  return {mean, variance, kurtosis};
}

double ks_against_normal_cdf(NormalSampler sampler, std::uint64_t seed,
                             int n) {
  Engine e(seed);
  std::vector<double> z(static_cast<std::size_t>(n));
  fill_standard_normal(e, z, sampler);
  std::sort(z.begin(), z.end());
  double worst = 0.0;
  for (int i = 0; i < n; ++i) {
    const double ref = 0.5 * std::erfc(-z[static_cast<std::size_t>(i)] /
                                       std::numbers::sqrt2);
    const double emp_hi = static_cast<double>(i + 1) / n;
    const double emp_lo = static_cast<double>(i) / n;
    worst = std::max({worst, std::abs(emp_hi - ref), std::abs(ref - emp_lo)});
  }
  return worst;
}

TEST(Ziggurat, MomentsIncludingExcessKurtosis) {
  // Mean 0, variance 1, excess kurtosis 0. The kurtosis term is the one
  // that catches wedge/tail bugs: a ziggurat that silently clips its tail
  // still has perfect mean and near-perfect variance, but light tails
  // drag the fourth moment visibly below 3.
  const Moments m = sample_moments(NormalSampler::kZiggurat, 31, 400000);
  EXPECT_NEAR(m.mean, 0.0, 0.01);
  EXPECT_NEAR(m.variance, 1.0, 0.01);
  EXPECT_NEAR(m.excess_kurtosis, 0.0, 0.05);
}

TEST(Ziggurat, KsStatisticAgainstNormalCdf) {
  // KS 1% critical value for n=20000 is ~0.0115.
  EXPECT_LT(ks_against_normal_cdf(NormalSampler::kZiggurat, 33, 20000),
            0.0115);
}

TEST(Ziggurat, TailPathProducesExtremeValues) {
  // 2M draws should comfortably exceed |z| = 4.5 (expected max ~5.0); a
  // sampler whose tail branch is broken or unreachable stays below it.
  Engine e(35);
  std::vector<double> z(16384);
  double extreme = 0.0;
  for (int pass = 0; pass < 128; ++pass) {
    fill_standard_normal_ziggurat(e, z);
    for (const double v : z) extreme = std::max(extreme, std::abs(v));
  }
  EXPECT_GT(extreme, 4.5);
  EXPECT_LT(extreme, 8.0);  // and nothing absurd
}

TEST(Ziggurat, FillMatchesPerSampleDraws) {
  // The batched fill must consume the engine exactly like repeated
  // single-sample draws: this is what makes obfuscate()/obfuscate_into()
  // produce one and the same stream.
  Engine batched(41);
  Engine single(41);
  std::vector<double> out(1537);  // deliberately not a power of two
  fill_standard_normal_ziggurat(batched, out);
  for (const double v : out) {
    EXPECT_DOUBLE_EQ(v, standard_normal_ziggurat(single));
  }
  EXPECT_EQ(batched(), single());  // engines fully in lockstep after
}

TEST(FillStandardNormal, DeterministicPerSamplerChoice) {
  for (const NormalSampler sampler :
       {NormalSampler::kZiggurat, NormalSampler::kInverseCdf}) {
    Engine a(43), b(43);
    std::vector<double> va(257), vb(257);
    fill_standard_normal(a, va, sampler);
    fill_standard_normal(b, vb, sampler);
    EXPECT_EQ(va, vb);
  }
}

TEST(FillStandardNormal, InverseCdfPathIsTheProbitOfUniforms) {
  // The icdf fill must reproduce the legacy one-draw-per-variate stream.
  Engine filled(47), manual(47);
  std::vector<double> out(100);
  fill_standard_normal(filled, out, NormalSampler::kInverseCdf);
  for (const double v : out) {
    EXPECT_DOUBLE_EQ(v, normal_quantile(manual.uniform_positive()));
  }
}

TEST(SamplerEquivalence, BothSamplersMatchTheSameDistribution) {
  // Same N(0,1), different streams: moments agree within statistical
  // error, and each path separately passes the KS test against Phi.
  const Moments zig = sample_moments(NormalSampler::kZiggurat, 51, 300000);
  const Moments icdf = sample_moments(NormalSampler::kInverseCdf, 53, 300000);
  EXPECT_NEAR(zig.mean, icdf.mean, 0.01);
  EXPECT_NEAR(zig.variance, icdf.variance, 0.02);
  EXPECT_NEAR(zig.excess_kurtosis, icdf.excess_kurtosis, 0.08);
  EXPECT_LT(ks_against_normal_cdf(NormalSampler::kInverseCdf, 55, 20000),
            0.0115);
}

TEST(SamplerSwitch, SetDefaultControlsEveryDispatchPoint) {
  {
    const SamplerGuard guard(NormalSampler::kInverseCdf);
    Engine e(61), clone(61);
    EXPECT_DOUBLE_EQ(standard_normal(e),
                     normal_quantile(clone.uniform_positive()));
  }
  {
    const SamplerGuard guard(NormalSampler::kZiggurat);
    Engine e(61), clone(61);
    EXPECT_DOUBLE_EQ(standard_normal(e), standard_normal_ziggurat(clone));
  }
}

TEST(SamplerSwitch, GuardRestoresProcessDefault) {
  const NormalSampler before = default_normal_sampler();
  {
    const SamplerGuard guard(before == NormalSampler::kZiggurat
                                 ? NormalSampler::kInverseCdf
                                 : NormalSampler::kZiggurat);
    EXPECT_NE(default_normal_sampler(), before);
  }
  EXPECT_EQ(default_normal_sampler(), before);
}

TEST(SamplerSwitch, SamplersYieldDifferentStreams) {
  // Same seed, different sampler => different sequence (the determinism
  // contract is seed + sampler, not seed alone).
  Engine a(67), b(67);
  std::vector<double> za(64), zb(64);
  fill_standard_normal(a, za, NormalSampler::kZiggurat);
  fill_standard_normal(b, zb, NormalSampler::kInverseCdf);
  EXPECT_NE(za, zb);
}

// ------------------------------------------------- batched 2-D noise fill

TEST(GaussianNoise2d, MarginalsAreGaussian) {
  Engine e(71);
  const double sigma = 120.0;
  double sx = 0.0, sx2 = 0.0, sy2 = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const geo::Point p = gaussian_noise_2d(e, sigma);
    sx += p.x + p.y;
    sx2 += p.x * p.x;
    sy2 += p.y * p.y;
  }
  EXPECT_NEAR(sx / (2 * kN), 0.0, 1.0);
  EXPECT_NEAR(std::sqrt(sx2 / kN), sigma, sigma * 0.02);
  EXPECT_NEAR(std::sqrt(sy2 / kN), sigma, sigma * 0.02);
}

TEST(FillGaussianNoise2d, MatchesPerPointDrawsUnderZiggurat) {
  const SamplerGuard guard(NormalSampler::kZiggurat);
  Engine filled(73), manual(73);
  std::vector<geo::Point> out(33);
  const geo::Point center{1000.0, -500.0};
  fill_gaussian_noise_2d(filled, 80.0, out, center);
  for (const geo::Point& p : out) {
    const geo::Point q = center + gaussian_noise(manual, 80.0);
    EXPECT_DOUBLE_EQ(p.x, q.x);
    EXPECT_DOUBLE_EQ(p.y, q.y);
  }
}

TEST(FillGaussianNoise2d, MatchesPerPointDrawsUnderInverseCdf) {
  // In icdf mode the fill uses the legacy polar recipe per point, so the
  // stream must equal a hand-rolled theta/radius loop.
  const SamplerGuard guard(NormalSampler::kInverseCdf);
  Engine filled(79), manual(79);
  std::vector<geo::Point> out(33);
  fill_gaussian_noise_2d(filled, 80.0, out);
  for (const geo::Point& p : out) {
    const double theta = manual.uniform_in(0.0, 2.0 * std::numbers::pi);
    const double r = rayleigh_quantile(manual.uniform(), 80.0);
    EXPECT_DOUBLE_EQ(p.x, r * std::cos(theta));
    EXPECT_DOUBLE_EQ(p.y, r * std::sin(theta));
  }
}

TEST(FillGaussianNoise2d, EmptySpanConsumesNothing) {
  Engine e(83), untouched(83);
  fill_gaussian_noise_2d(e, 50.0, {});
  EXPECT_EQ(e(), untouched());
}

// ---------------------------------------------- deep-tail probit accuracy

TEST(NormalQuantileTail, RoundTripsThroughTheExactCdf) {
  // Pin the deep-tail accuracy the tail_radius / trimming calibration
  // depends on: the CDF of the quantile must return p to high relative
  // accuracy far beyond the central range.
  for (const double p : {1e-12, 1e-9, 1e-6, 1e-3}) {
    const double x = normal_quantile(p);
    const double cdf = 0.5 * std::erfc(-x / std::numbers::sqrt2);
    EXPECT_NEAR(cdf / p, 1.0, 1e-8) << "p = " << p;
  }
}

TEST(NormalQuantileTail, SymmetricAndMonotone) {
  double prev = -1e300;
  for (const double p :
       {1e-12, 1e-9, 1e-6, 1e-3, 0.1, 0.5, 0.9, 1.0 - 1e-6, 1.0 - 1e-9}) {
    const double x = normal_quantile(p);
    EXPECT_GT(x, prev) << "p = " << p;
    prev = x;
  }
  for (const double p : {1e-9, 1e-6, 1e-3, 0.25}) {
    EXPECT_NEAR(normal_quantile(p), -normal_quantile(1.0 - p),
                1e-9 * std::abs(normal_quantile(p)) + 1e-12)
        << "p = " << p;
  }
}

TEST(NormalQuantileTail, KnownDeepTailValue) {
  // Phi^{-1}(1e-6) from reference tables (Wichura AS241 territory).
  EXPECT_NEAR(normal_quantile(1e-6), -4.753424308822899, 1e-8);
}

}  // namespace
}  // namespace privlocad::rng
