// IoBackend conformance suite (ctest label: net_backend).
//
// The contract under test: the IO backend is a TRANSPORT, not a policy
// layer. Swapping epoll for io_uring must not change a single observable
// byte -- same seeds produce the same served/shed/degraded partitions
// and bit-identical response frames, with or without an injected fault
// schedule. Every case runs against each backend the host supports
// (epoll always; io_uring when the kernel accepts the ring) and compares
// the full response stream across them. The suite is also the TSan
// target for the backends: it exercises accept, framing, admission,
// worker handoff, backpressure, and teardown on both implementations.
#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/edge_device.hpp"
#include "fault/fault.hpp"
#include "net/admission.hpp"
#include "net/client.hpp"
#include "net/io_backend.hpp"
#include "net/load_model.hpp"
#include "net/server.hpp"
#include "trace/check_in.hpp"

namespace privlocad {
namespace {

/// Every backend this host can actually run. epoll is unconditional;
/// io_uring joins when the build compiled it in AND the kernel accepts
/// the ring (the same probe the auto selector uses).
std::vector<net::IoBackendKind> conformance_kinds() {
  std::vector<net::IoBackendKind> kinds{net::IoBackendKind::kEpoll};
  if (net::io_uring_compiled_in() && net::io_uring_available()) {
    kinds.push_back(net::IoBackendKind::kIoUring);
  }
  return kinds;
}

std::unique_ptr<net::EdgeServer> boot(const core::EdgeConfig& edge_config,
                                      const net::ServerConfig& config) {
  util::Result<std::unique_ptr<net::EdgeServer>> created =
      net::EdgeServer::create(edge_config, config);
  EXPECT_TRUE(created.ok()) << created.status().to_string();
  if (!created.ok()) return nullptr;
  std::unique_ptr<net::EdgeServer> server = std::move(created.value());
  const util::Status started = server->start();
  EXPECT_TRUE(started.ok()) << started.to_string();
  if (!started.ok()) return nullptr;
  return server;
}

/// One response frame, every field bit-exact (double coordinates
/// compared through their bit patterns, so -0.0 vs 0.0 or NaN payload
/// differences cannot hide behind operator==).
struct ResponseRecord {
  std::uint64_t request_id = 0;
  std::uint8_t outcome = 0;
  std::uint8_t kind = 0;
  std::uint8_t status_code = 0;
  std::uint8_t released = 0;
  std::uint32_t retries = 0;
  std::uint64_t x_bits = 0;
  std::uint64_t y_bits = 0;

  bool operator==(const ResponseRecord&) const = default;
};

ResponseRecord record_of(const net::ServeResponseFrame& frame) {
  ResponseRecord record;
  record.request_id = frame.request_id;
  record.outcome = frame.outcome;
  record.kind = frame.kind;
  record.status_code = frame.status_code;
  record.released = frame.released;
  record.retries = frame.retries;
  record.x_bits = std::bit_cast<std::uint64_t>(frame.x);
  record.y_bits = std::bit_cast<std::uint64_t>(frame.y);
  return record;
}

net::ServeRequestFrame conformance_request(std::uint64_t i) {
  net::ServeRequestFrame request;
  request.request_id = i;
  request.user_id = 1 + (i % 8);
  request.x = 1000.0 + static_cast<double>(i % 8) * 10.0 +
              static_cast<double>(i % 5);
  request.y = 2000.0 + static_cast<double>(i % 3);
  request.time = trace::kStudyStart + static_cast<std::int64_t>(i);
  return request;
}

/// Drives `n` sequential requests through one connection against a
/// fresh server on `kind` and returns the full response stream.
std::vector<ResponseRecord> drive_sequential(net::IoBackendKind kind,
                                             std::uint64_t n,
                                             fault::FaultInjector* faults,
                                             std::size_t workers) {
  core::EdgeConfig edge_config;
  edge_config.seed = 11;
  edge_config.shards = 4;
  edge_config.faults = faults;
  std::unique_ptr<net::EdgeServer> server = boot(
      edge_config,
      net::ServerConfig{}.with_workers(workers).with_backend(kind));
  if (server == nullptr) return {};

  util::Result<net::BlockingClient> client =
      net::BlockingClient::connect(server->port());
  EXPECT_TRUE(client.ok()) << client.status().to_string();
  if (!client.ok()) return {};

  std::vector<ResponseRecord> records;
  records.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    util::Result<net::ServeResponseFrame> response =
        client->call(conformance_request(i));
    EXPECT_TRUE(response.ok()) << response.status().to_string();
    if (!response.ok()) break;
    records.push_back(record_of(response.value()));
  }
  server->stop();
  return records;
}

TEST(BackendConformance, SameSeedsYieldBitIdenticalResponseStreams) {
  const std::vector<net::IoBackendKind> kinds = conformance_kinds();
  const std::vector<ResponseRecord> reference =
      drive_sequential(kinds.front(), 96, nullptr, 2);
  ASSERT_EQ(reference.size(), 96u);

  // Re-running the FIRST backend establishes that the stream is a pure
  // function of the seed; then every other backend must match it.
  for (const net::IoBackendKind kind : kinds) {
    const std::vector<ResponseRecord> stream =
        drive_sequential(kind, 96, nullptr, 2);
    EXPECT_EQ(stream, reference)
        << "stream diverged on " << net::io_backend_kind_name(kind);
  }
  if (kinds.size() == 1) {
    ::testing::Test::RecordProperty("io_uring", "unavailable");
  }
}

TEST(BackendConformance, FaultScheduleYieldsIdenticalOutcomePartitions) {
  // A seeded fault plan at the serve site: the i-th serve draws the same
  // decision on every backend (workers=1 + one sequential connection
  // fixes the arrival order), so retries, degraded fallbacks, and drops
  // must land on the SAME requests with the same wire bytes.
  util::Result<fault::FaultPlan> plan =
      fault::FaultPlan::parse("seed=42;serve:p=0.3");
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();

  std::vector<std::vector<ResponseRecord>> streams;
  for (const net::IoBackendKind kind : conformance_kinds()) {
    fault::FaultInjector injector(plan.value());
    streams.push_back(drive_sequential(kind, 64, &injector, 1));
    ASSERT_EQ(streams.back().size(), 64u)
        << net::io_backend_kind_name(kind);
  }
  std::uint64_t not_plain_served = 0;
  for (const ResponseRecord& record : streams.front()) {
    if (record.outcome !=
        static_cast<std::uint8_t>(core::ServeOutcome::kServed)) {
      ++not_plain_served;
    }
  }
  EXPECT_GT(not_plain_served, 0u)
      << "fault plan injected nothing; the conformance check is vacuous";
  for (std::size_t i = 1; i < streams.size(); ++i) {
    EXPECT_EQ(streams[i], streams.front());
  }
}

TEST(BackendConformance, ShedPartitionIsDeterministicAcrossBackends) {
  // workers=1, capacity=1, slow service: request 0 occupies the worker,
  // request 1 the queue slot, and every later request MUST shed at push.
  // The partition is then a pure function of the request order, so both
  // backends must produce it exactly -- and shed responses must carry
  // zeroed coordinates (fail private on the wire).
  auto drive = [](net::IoBackendKind kind) {
    core::EdgeConfig edge_config;
    edge_config.seed = 11;
    edge_config.shards = 2;
    std::unique_ptr<net::EdgeServer> server =
        boot(edge_config, net::ServerConfig{}
                              .with_workers(1)
                              .with_queue_capacity(1)
                              .with_service_delay_us(200000)
                              .with_backend(kind));
    std::map<std::uint64_t, ResponseRecord> by_id;
    if (server == nullptr) return by_id;
    util::Result<net::BlockingClient> client =
        net::BlockingClient::connect(server->port());
    EXPECT_TRUE(client.ok()) << client.status().to_string();
    if (!client.ok()) return by_id;

    EXPECT_TRUE(client->send(conformance_request(0)).ok());
    // Let the worker pop request 0 into its 200 ms service delay so the
    // queue slot is empty when the burst below lands.
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    for (std::uint64_t i = 1; i <= 12; ++i) {
      EXPECT_TRUE(client->send(conformance_request(i)).ok());
    }
    for (int i = 0; i < 13; ++i) {
      util::Result<net::ServeResponseFrame> response = client->receive();
      EXPECT_TRUE(response.ok()) << response.status().to_string();
      if (!response.ok()) break;
      by_id[response->request_id] = record_of(response.value());
    }
    server->stop();
    return by_id;
  };

  std::vector<std::map<std::uint64_t, ResponseRecord>> partitions;
  for (const net::IoBackendKind kind : conformance_kinds()) {
    partitions.push_back(drive(kind));
    const std::map<std::uint64_t, ResponseRecord>& by_id =
        partitions.back();
    ASSERT_EQ(by_id.size(), 13u) << net::io_backend_kind_name(kind);
    for (const auto& [id, record] : by_id) {
      if (id <= 1) {
        EXPECT_NE(record.outcome,
                  static_cast<std::uint8_t>(
                      core::ServeOutcome::kDegradedDropped))
            << "admitted request " << id << " was shed on "
            << net::io_backend_kind_name(kind);
      } else {
        EXPECT_EQ(record.outcome,
                  static_cast<std::uint8_t>(
                      core::ServeOutcome::kDegradedDropped))
            << "request " << id << " escaped the full queue on "
            << net::io_backend_kind_name(kind);
        EXPECT_EQ(record.released, 0u);
        EXPECT_EQ(record.x_bits, 0u);
        EXPECT_EQ(record.y_bits, 0u);
      }
    }
  }
  for (std::size_t i = 1; i < partitions.size(); ++i) {
    EXPECT_EQ(partitions[i], partitions.front());
  }
}

TEST(BackendConformance, LatencyBudgetAccountsEveryRequestUnderOverload) {
  // 4x overload against the latency-budget policy: projected-delay
  // shedding must keep PR 8's at-push accounting -- every request that
  // went out comes back as exactly one response (served or shed), with
  // nothing missing and nothing leaked -- on BOTH backends.
  for (const net::IoBackendKind kind : conformance_kinds()) {
    core::EdgeConfig edge_config;
    edge_config.seed = 11;
    edge_config.shards = 4;
    std::unique_ptr<net::EdgeServer> server =
        boot(edge_config,
             net::ServerConfig{}
                 .with_workers(2)
                 .with_queue_capacity(256)
                 .with_service_delay_us(500)
                 .with_admission(net::AdmissionPolicy::kLatencyBudget)
                 .with_latency_budget_us(2000)
                 .with_backend(kind));
    ASSERT_NE(server, nullptr);

    // 2 workers x 500 us/service caps throughput near 4000 rps; offer
    // 4x that.
    net::LoadPlanConfig plan_config;
    plan_config.target_rps = 16000.0;
    plan_config.duration_s = 0.25;
    plan_config.users = 64;
    plan_config.seed = 77;
    net::OpenLoopConfig loop_config;
    loop_config.port = server->port();
    loop_config.connections = 4;
    util::Result<net::OpenLoopStats> run = net::run_open_loop(
        loop_config, net::build_open_loop_plan(plan_config));
    ASSERT_TRUE(run.ok()) << run.status().to_string();
    const net::OpenLoopStats& stats = run.value();
    server->stop();

    EXPECT_EQ(stats.missing, 0u) << net::io_backend_kind_name(kind);
    EXPECT_EQ(stats.responses, stats.sent);
    EXPECT_EQ(stats.served + stats.served_after_retry +
                  stats.degraded_cached + stats.degraded_dropped +
                  stats.failed,
              stats.responses);
    EXPECT_GT(stats.degraded_dropped, 0u)
        << "4x overload shed nothing; the budget is not binding";
    EXPECT_EQ(stats.raw_leaks, 0u);
    EXPECT_EQ(stats.wire_errors, 0u);
  }
}

}  // namespace
}  // namespace privlocad
