// Tests for the core Edge-PrivLocAd modules: eta-frequent sets, location
// management, the permanent obfuscation table, posterior output selection,
// and the edge device's reporting logic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "core/edge_device.hpp"
#include "core/eta_frequent.hpp"
#include "core/location_management.hpp"
#include "core/obfuscation_table.hpp"
#include "core/output_selection.hpp"
#include "lppm/gaussian.hpp"
#include "rng/engine.hpp"
#include "rng/samplers.hpp"
#include "util/validation.hpp"

namespace privlocad::core {
namespace {

attack::LocationProfile make_profile(
    std::vector<std::pair<geo::Point, std::uint64_t>> raw) {
  std::vector<attack::ProfileEntry> entries;
  for (const auto& [p, f] : raw) entries.push_back({p, f});
  return attack::LocationProfile(std::move(entries));
}

lppm::BoundedGeoIndParams paper_params(std::size_t n = 10) {
  lppm::BoundedGeoIndParams p;
  p.radius_m = 500.0;
  p.epsilon = 1.0;
  p.delta = 0.01;
  p.n = n;
  return p;
}

// ------------------------------------------------------------ eta-frequent

TEST(EtaFrequent, MinimalPrefixReachingEta) {
  const auto profile = make_profile({{{0, 0}, 50}, {{1, 1}, 30}, {{2, 2}, 20}});
  EXPECT_EQ(eta_frequent_set(profile, 50).size(), 1u);
  EXPECT_EQ(eta_frequent_set(profile, 51).size(), 2u);
  EXPECT_EQ(eta_frequent_set(profile, 80).size(), 2u);
  EXPECT_EQ(eta_frequent_set(profile, 81).size(), 3u);
}

TEST(EtaFrequent, EtaBeyondTotalReturnsWholeProfile) {
  const auto profile = make_profile({{{0, 0}, 5}, {{1, 1}, 3}});
  EXPECT_EQ(eta_frequent_set(profile, 100).size(), 2u);
}

TEST(EtaFrequent, FractionVariantMatchesAbsolute) {
  const auto profile = make_profile({{{0, 0}, 70}, {{1, 1}, 30}});
  EXPECT_EQ(eta_frequent_set_fraction(profile, 0.7).size(), 1u);
  EXPECT_EQ(eta_frequent_set_fraction(profile, 0.71).size(), 2u);
  EXPECT_EQ(eta_frequent_set_fraction(profile, 1.0).size(), 2u);
}

TEST(EtaFrequent, MinimalityProperty) {
  // Removing the last element of the eta set must drop below eta.
  const auto profile =
      make_profile({{{0, 0}, 40}, {{1, 1}, 35}, {{2, 2}, 15}, {{3, 3}, 10}});
  for (const std::uint64_t eta : {1u, 40u, 41u, 75u, 76u, 90u, 100u}) {
    const auto set = eta_frequent_set(profile, eta);
    std::uint64_t sum = 0;
    for (const auto& e : set) sum += e.frequency;
    EXPECT_GE(sum, std::min<std::uint64_t>(eta, 100u));
    if (set.size() > 1) {
      EXPECT_LT(sum - set.back().frequency, eta);
    }
  }
}

TEST(EtaFrequent, DomainErrors) {
  const auto profile = make_profile({{{0, 0}, 10}});
  EXPECT_THROW(eta_frequent_set(profile, 0), util::InvalidArgument);
  EXPECT_THROW(eta_frequent_set_fraction(profile, 0.0),
               util::InvalidArgument);
  EXPECT_THROW(eta_frequent_set_fraction(profile, 1.5),
               util::InvalidArgument);
  const attack::LocationProfile empty;
  EXPECT_THROW(eta_frequent_set_fraction(empty, 0.5), util::InvalidArgument);
}

// ------------------------------------------------------ location management

LocationManagementConfig fast_window() {
  LocationManagementConfig c;
  c.window_seconds = 1000;
  c.min_top_frequency = 2;
  return c;
}

TEST(LocationManager, NoTopLocationsBeforeFirstRebuild) {
  LocationManager mgr(fast_window());
  mgr.record({0, 0}, 0);
  EXPECT_TRUE(mgr.top_locations().empty());
  EXPECT_FALSE(mgr.profile().has_value());
  EXPECT_EQ(mgr.pending_check_ins(), 1u);
}

TEST(LocationManager, WindowCrossingTriggersRebuild) {
  LocationManager mgr(fast_window());
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(mgr.record({0.0 + i * 0.1, 0.0}, i));
  }
  // Crossing the 1000-second boundary rebuilds from the completed window.
  EXPECT_TRUE(mgr.record({5000, 5000}, 2000));
  ASSERT_FALSE(mgr.top_locations().empty());
  EXPECT_NEAR(mgr.top_locations()[0].location.x, 0.45, 0.01);
  EXPECT_EQ(mgr.pending_check_ins(), 1u);  // the triggering check-in
}

TEST(LocationManager, RebuildNowFlushesPending) {
  LocationManager mgr(fast_window());
  for (int i = 0; i < 5; ++i) mgr.record({0, 0}, i);
  mgr.rebuild_now();
  ASSERT_EQ(mgr.top_locations().size(), 1u);
  EXPECT_EQ(mgr.top_locations()[0].frequency, 5u);
  EXPECT_EQ(mgr.pending_check_ins(), 0u);
}

TEST(LocationManager, MinTopFrequencyFiltersOneOffs) {
  LocationManagementConfig c = fast_window();
  c.eta_fraction = 1.0;  // would otherwise include everything
  c.min_top_frequency = 3;
  LocationManager mgr(c);
  for (int i = 0; i < 5; ++i) mgr.record({0, 0}, i);
  mgr.record({9000, 9000}, 6);  // single one-off
  mgr.rebuild_now();
  ASSERT_EQ(mgr.top_locations().size(), 1u);
  EXPECT_EQ(mgr.top_locations()[0].frequency, 5u);
}

TEST(LocationManager, EtaFractionControlsSetSize) {
  LocationManagementConfig c = fast_window();
  c.eta_fraction = 0.6;
  c.min_top_frequency = 1;
  LocationManager mgr(c);
  for (int i = 0; i < 60; ++i) mgr.record({0, 0}, i);
  for (int i = 0; i < 40; ++i) mgr.record({8000, 0}, 100 + i);
  mgr.rebuild_now();
  EXPECT_EQ(mgr.top_locations().size(), 1u);  // top-1 covers 60% >= eta
}

TEST(LocationManager, SparseWindowDoesNotWipeTopLocations) {
  LocationManagementConfig c = fast_window();
  c.min_window_check_ins = 10;
  LocationManager mgr(c);
  for (int i = 0; i < 20; ++i) mgr.record({0, 0}, i);
  mgr.rebuild_now();
  ASSERT_EQ(mgr.top_locations().size(), 1u);

  // One straggler check-in crosses the next window boundary: with the
  // guard it must NOT trigger a rebuild that erases the top set.
  EXPECT_FALSE(mgr.record({0, 0}, 5000));
  EXPECT_EQ(mgr.top_locations().size(), 1u);
  // Once enough check-ins accumulate past the boundary, the rebuild runs.
  bool rebuilt = false;
  for (int i = 1; i < 15; ++i) {
    rebuilt = mgr.record({0, 0}, 5000 + 2000 + i) || rebuilt;
  }
  EXPECT_TRUE(rebuilt);
  EXPECT_EQ(mgr.top_locations().size(), 1u);
}

TEST(LocationManager, InvalidConfigRejected) {
  LocationManagementConfig c = fast_window();
  c.window_seconds = 0;
  EXPECT_THROW(LocationManager{c}, util::InvalidArgument);
  c = fast_window();
  c.eta_fraction = 0.0;
  EXPECT_THROW(LocationManager{c}, util::InvalidArgument);
}

// -------------------------------------------------------- obfuscation table

TEST(ObfuscationTable, GeneratesOnceAndReplays) {
  ObfuscationTable table(100.0);
  const lppm::NFoldGaussianMechanism mech(paper_params(5));
  rng::Engine e(1);

  const auto& first = table.candidates_for(e, mech, {0, 0});
  ASSERT_EQ(first.size(), 5u);
  const std::vector<geo::Point> snapshot = first;

  // Same location -> identical (permanent) candidates, no regeneration.
  const auto& again = table.candidates_for(e, mech, {0, 0});
  ASSERT_EQ(again.size(), snapshot.size());
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_EQ(again[i], snapshot[i]);
  }
  EXPECT_EQ(table.size(), 1u);
}

TEST(ObfuscationTable, NearbyDriftReusesEntry) {
  ObfuscationTable table(100.0);
  const lppm::NFoldGaussianMechanism mech(paper_params(3));
  rng::Engine e(2);
  const auto& original = table.candidates_for(e, mech, {0, 0});
  const std::vector<geo::Point> snapshot = original;
  // A centroid drifted 50 m (inside the match radius) hits the same entry.
  const auto& drifted = table.candidates_for(e, mech, {50, 0});
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(drifted[0], snapshot[0]);
}

TEST(ObfuscationTable, FarLocationCreatesNewEntry) {
  ObfuscationTable table(100.0);
  const lppm::NFoldGaussianMechanism mech(paper_params(3));
  rng::Engine e(3);
  table.candidates_for(e, mech, {0, 0});
  table.candidates_for(e, mech, {5000, 0});
  EXPECT_EQ(table.size(), 2u);
}

TEST(ObfuscationTable, LookupWithoutGeneration) {
  ObfuscationTable table(100.0);
  const lppm::NFoldGaussianMechanism mech(paper_params(3));
  rng::Engine e(4);
  EXPECT_FALSE(table.lookup({0, 0}).has_value());
  table.candidates_for(e, mech, {0, 0});
  EXPECT_TRUE(table.lookup({0, 0}).has_value());
  EXPECT_TRUE(table.lookup({99, 0}).has_value());
  EXPECT_FALSE(table.lookup({500, 0}).has_value());
  EXPECT_THROW(ObfuscationTable(0.0), util::InvalidArgument);
}

// --------------------------------------------------------- output selection

TEST(OutputSelection, ProbabilitiesSumToOneAndFavorCentralCandidates) {
  const std::vector<geo::Point> candidates{
      {0, 0}, {100, 0}, {5000, 0}, {-80, 30}};
  const auto probs = selection_probabilities(candidates, 1000.0);
  ASSERT_EQ(probs.size(), 4u);
  double sum = 0.0;
  for (const double p : probs) {
    EXPECT_GT(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // The candidate nearest the centroid gets the largest weight; the
  // 5 km outlier the smallest.
  const geo::Point mean = geo::centroid(candidates);
  std::size_t nearest = 0, farthest = 0;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    if (geo::distance(candidates[i], mean) <
        geo::distance(candidates[nearest], mean)) {
      nearest = i;
    }
    if (geo::distance(candidates[i], mean) >
        geo::distance(candidates[farthest], mean)) {
      farthest = i;
    }
  }
  for (std::size_t i = 0; i < probs.size(); ++i) {
    EXPECT_LE(probs[i], probs[nearest] + 1e-15);
    EXPECT_GE(probs[i], probs[farthest] - 1e-15);
  }
}

TEST(OutputSelection, SingleCandidateIsCertain) {
  const auto probs = selection_probabilities({{7, 7}}, 500.0);
  ASSERT_EQ(probs.size(), 1u);
  EXPECT_DOUBLE_EQ(probs[0], 1.0);
}

TEST(OutputSelection, EmpiricalSamplingMatchesProbabilities) {
  const std::vector<geo::Point> candidates{{0, 0}, {2000, 0}, {-300, 400}};
  const double sigma = 800.0;
  const auto probs = selection_probabilities(candidates, sigma);

  rng::Engine e(5);
  std::map<std::size_t, int> counts;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    ++counts[select_candidate(e, candidates, sigma)];
  }
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kN, probs[i], 0.01);
  }
}

TEST(OutputSelection, NumericallyStableForTinySigma) {
  // Distances >> sigma underflow exp(); the log-shift must keep this sane.
  const std::vector<geo::Point> candidates{{0, 0}, {1e7, 0}};
  const auto probs = selection_probabilities(candidates, 1.0);
  EXPECT_NEAR(probs[0] + probs[1], 1.0, 1e-12);
  EXPECT_FALSE(std::isnan(probs[0]));
}

TEST(OutputSelection, UniformBaselineIsUniform) {
  rng::Engine e(6);
  const std::vector<geo::Point> candidates{{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  std::map<std::size_t, int> counts;
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) ++counts[select_uniform(e, candidates)];
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kN, 0.25, 0.02);
  }
}

TEST(OutputSelection, DomainErrors) {
  rng::Engine e(7);
  EXPECT_THROW(selection_probabilities(std::vector<geo::Point>{}, 1.0),
               util::InvalidArgument);
  EXPECT_THROW(selection_probabilities(simd::PointSpan{}, 1.0),
               util::InvalidArgument);
  EXPECT_THROW(selection_probabilities({{0, 0}}, 0.0),
               util::InvalidArgument);
  EXPECT_THROW(select_uniform(e, {}), util::InvalidArgument);
}

// -------------------------------------------------------------- edge device

EdgeConfig fast_edge_config() {
  EdgeConfig c;
  c.top_params = paper_params(10);
  c.management.window_seconds = 1000;
  c.management.min_top_frequency = 2;
  return c;
}

TEST(EdgeDevice, NomadicBeforeProfileExists) {
  EdgeDevice edge(fast_edge_config().with_seed(42));
  const ReportedLocation r = edge.report_location(1, {0, 0}, 0);
  EXPECT_EQ(r.kind, ReportKind::kNomadic);
}

TEST(EdgeDevice, TopLocationReportsReplayFrozenCandidates) {
  EdgeDevice edge(fast_edge_config().with_seed(42));
  const geo::Point home{100.0, 200.0};
  trace::UserTrace history;
  history.user_id = 1;
  for (int i = 0; i < 50; ++i) history.check_ins.push_back({home, i});
  edge.import_history(1, history);
  ASSERT_FALSE(edge.top_locations(1).empty());

  // All top-location reports must come from the same frozen candidate set.
  std::set<std::pair<double, double>> reported;
  for (int i = 0; i < 200; ++i) {
    const ReportedLocation r = edge.report_location(1, home, 2000 + i);
    ASSERT_EQ(r.kind, ReportKind::kTopLocation);
    reported.insert({r.location.x, r.location.y});
  }
  EXPECT_LE(reported.size(), 10u);  // at most n distinct points, ever
}

TEST(EdgeDevice, FarCheckInIsNomadic) {
  EdgeDevice edge(fast_edge_config().with_seed(42));
  const geo::Point home{0.0, 0.0};
  trace::UserTrace history;
  history.user_id = 1;
  for (int i = 0; i < 50; ++i) history.check_ins.push_back({home, i});
  edge.import_history(1, history);

  const ReportedLocation r =
      edge.report_location(1, {30000.0, 30000.0}, 5000);
  EXPECT_EQ(r.kind, ReportKind::kNomadic);
}

TEST(EdgeDevice, FilterAdsKeepsOnlyAoi) {
  EdgeDevice edge(fast_edge_config().with_seed(42));
  std::vector<adnet::Ad> ads{
      {1, {1000, 0}, "a", 1.0},          // inside 5 km AOI
      {2, {20000, 0}, "b", 1.0},         // outside
      {3, {0, 4999}, "c", 1.0},          // inside
  };
  const auto kept = edge.filter_ads(ads, {0, 0});
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].advertiser_id, 1u);
  EXPECT_EQ(kept[1].advertiser_id, 3u);
}

TEST(EdgeDevice, UsersAreIsolated) {
  EdgeDevice edge(fast_edge_config().with_seed(42));
  const geo::Point home{0.0, 0.0};
  trace::UserTrace history;
  history.user_id = 1;
  for (int i = 0; i < 50; ++i) history.check_ins.push_back({home, i});
  edge.import_history(1, history);

  // User 2 has no profile: same location reports nomadically.
  const ReportedLocation r = edge.report_location(2, home, 0);
  EXPECT_EQ(r.kind, ReportKind::kNomadic);
  EXPECT_EQ(edge.user_count(), 2u);
}

TEST(EdgeDevice, SnapshotRestoreSurvivesRestart) {
  const geo::Point home{100.0, 200.0};
  trace::UserTrace history;
  history.user_id = 1;
  for (int i = 0; i < 50; ++i) history.check_ins.push_back({home, i});

  // Device A freezes a candidate set, then "crashes".
  EdgeDevice device_a(fast_edge_config().with_seed(42));
  device_a.import_history(1, history);
  const ReportedLocation before = device_a.report_location(1, home, 2000);
  ASSERT_EQ(before.kind, ReportKind::kTopLocation);
  const TableSnapshot snapshot = device_a.snapshot_tables();
  ASSERT_EQ(snapshot.size(), 1u);

  // Device B restarts with a different engine seed but restored tables:
  // it must replay the SAME frozen candidates, never fresh noise.
  EdgeDevice device_b(fast_edge_config().with_seed(777));
  device_b.restore_tables(snapshot);
  device_b.import_history(1, history);
  std::set<std::pair<double, double>> replayed;
  for (int i = 0; i < 100; ++i) {
    const ReportedLocation r = device_b.report_location(1, home, 3000 + i);
    ASSERT_EQ(r.kind, ReportKind::kTopLocation);
    replayed.insert({r.location.x, r.location.y});
  }
  const auto& saved = snapshot.at(1).entries().front().candidates;
  for (const auto& [x, y] : replayed) {
    const bool from_saved_set = std::any_of(
        saved.begin(), saved.end(), [&](geo::Point p) {
          return geo::distance(p, {x, y}) < 1e-9;
        });
    EXPECT_TRUE(from_saved_set);
  }
}

TEST(EdgeDevice, RestoreOverLiveEntriesRejected) {
  const geo::Point home{0.0, 0.0};
  trace::UserTrace history;
  history.user_id = 1;
  for (int i = 0; i < 50; ++i) history.check_ins.push_back({home, i});

  EdgeDevice device(fast_edge_config().with_seed(42));
  device.import_history(1, history);
  device.prepare_obfuscation(1);
  const TableSnapshot snapshot = device.snapshot_tables();
  EXPECT_THROW(device.restore_tables(snapshot), util::InvalidArgument);
}

TEST(EdgeDevice, AccountantChargesOncePerTopLocation) {
  const geo::Point home{0.0, 0.0};
  trace::UserTrace history;
  history.user_id = 1;
  for (int i = 0; i < 50; ++i) history.check_ins.push_back({home, i});

  EdgeDevice device(fast_edge_config().with_seed(42));
  device.import_history(1, history);
  for (int i = 0; i < 100; ++i) {
    const ReportedLocation r = device.report_location(1, home, 2000 + i);
    ASSERT_EQ(r.kind, ReportKind::kTopLocation);
  }
  // One permanent charge at (eps=1, delta=0.01), not 100 of them.
  const lppm::PrivacySpend spend = device.accountant().spend_for(1);
  EXPECT_EQ(spend.releases, 1u);
  EXPECT_DOUBLE_EQ(spend.basic_epsilon, 1.0);
  EXPECT_DOUBLE_EQ(spend.basic_delta, 0.01);
}

TEST(EdgeDevice, AccountantChargesEveryNomadicRelease) {
  EdgeDevice device(fast_edge_config().with_seed(42));
  for (int i = 0; i < 10; ++i) {
    device.report_location(2, {i * 20000.0, 0.0}, i);
  }
  const lppm::PrivacySpend spend = device.accountant().spend_for(2);
  EXPECT_EQ(spend.releases, 10u);
  EXPECT_NEAR(spend.basic_epsilon, 10.0 * std::log(4.0), 1e-9);
}

TEST(EdgeDevice, PersonalizedPrivacyGovernsNewTables) {
  const geo::Point home{0.0, 0.0};
  trace::UserTrace history;
  history.user_id = 1;
  for (int i = 0; i < 50; ++i) history.check_ins.push_back({home, i});

  EdgeDevice device(fast_edge_config().with_seed(42));
  // Stricter personal setting before any table exists.
  lppm::BoundedGeoIndParams strict = paper_params(10);
  strict.epsilon = 0.5;
  device.set_user_privacy(1, strict);
  EXPECT_DOUBLE_EQ(device.user_privacy(1).epsilon, 0.5);

  device.import_history(1, history);
  device.report_location(1, home, 2000);
  // The accountant charged at the PERSONAL epsilon, not the device's.
  const lppm::PrivacySpend spend = device.accountant().spend_for(1);
  EXPECT_DOUBLE_EQ(spend.basic_epsilon, 0.5);
}

TEST(EdgeDevice, PersonalizedPrivacyDefaultsToDeviceConfig) {
  EdgeDevice device(fast_edge_config().with_seed(42));
  EXPECT_DOUBLE_EQ(device.user_privacy(9).epsilon,
                   fast_edge_config().top_params.epsilon);
}

TEST(EdgeDevice, PersonalizedPrivacyValidatesParams) {
  EdgeDevice device(fast_edge_config().with_seed(42));
  lppm::BoundedGeoIndParams bad = paper_params(10);
  bad.epsilon = -1.0;
  EXPECT_THROW(device.set_user_privacy(1, bad), util::InvalidArgument);
}

TEST(EdgeDevice, FrozenTablesSurvivePrivacyChanges) {
  const geo::Point home{0.0, 0.0};
  trace::UserTrace history;
  history.user_id = 1;
  for (int i = 0; i < 50; ++i) history.check_ins.push_back({home, i});

  EdgeDevice device(fast_edge_config().with_seed(42));
  device.import_history(1, history);
  const ReportedLocation before = device.report_location(1, home, 2000);
  ASSERT_EQ(before.kind, ReportKind::kTopLocation);

  // Changing the personal level must NOT regenerate the frozen set.
  lppm::BoundedGeoIndParams loose = paper_params(10);
  loose.epsilon = 1.5;
  device.set_user_privacy(1, loose);
  std::set<std::pair<double, double>> reported;
  reported.insert({before.location.x, before.location.y});
  for (int i = 0; i < 100; ++i) {
    const ReportedLocation r = device.report_location(1, home, 3000 + i);
    reported.insert({r.location.x, r.location.y});
  }
  EXPECT_LE(reported.size(), 10u);  // still the original n candidates
  // And no second privacy charge was recorded.
  EXPECT_EQ(device.accountant().spend_for(1).releases, 1u);
}

TEST(EdgeDevice, RiskAssessmentTracksUserBehaviour) {
  EdgeDevice device(fast_edge_config().with_seed(42));
  // Unknown user: low risk.
  EXPECT_EQ(device.assess_user_risk(99).level, RiskLevel::kLow);

  // A concentrated heavy user becomes high risk.
  const geo::Point home{0.0, 0.0};
  trace::UserTrace history;
  history.user_id = 1;
  for (int i = 0; i < 1500; ++i) history.check_ins.push_back({home, i});
  device.import_history(1, history);
  const RiskAssessment risky = device.assess_user_risk(1);
  EXPECT_EQ(risky.level, RiskLevel::kHigh);
  EXPECT_GT(risky.entropy_signal, 0.9);
  EXPECT_FALSE(risky.recommendation.empty());
}

TEST(EdgeDevice, PrepareObfuscationFillsTable) {
  EdgeDevice edge(fast_edge_config().with_seed(42));
  trace::UserTrace history;
  history.user_id = 9;
  for (int i = 0; i < 30; ++i) history.check_ins.push_back({{0, 0}, i});
  for (int i = 0; i < 20; ++i) {
    history.check_ins.push_back({{8000, 0}, 100 + i});
  }
  edge.import_history(9, history);
  edge.prepare_obfuscation(9);
  // After preparation, reporting from a top location must not change the
  // candidate set (it was already frozen).
  const ReportedLocation r1 = edge.report_location(9, {0, 0}, 1000);
  EXPECT_EQ(r1.kind, ReportKind::kTopLocation);
}

}  // namespace
}  // namespace privlocad::core
