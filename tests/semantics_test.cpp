// Tests for the semantic-labelling attack stage (home/work inference from
// visit schedules).
#include <gtest/gtest.h>

#include "attack/semantics.hpp"
#include "rng/engine.hpp"
#include "trace/synthetic.hpp"
#include "util/validation.hpp"

namespace privlocad::attack {
namespace {

// Builds a check-in at an absolute day/hour offset from the study start.
trace::CheckIn at(geo::Point where, int day, int hour) {
  return {where,
          trace::kStudyStart + day * trace::kSecondsPerDay + hour * 3600};
}

// kStudyStart (2019-06-01) was a Saturday; weekdays are days 2..6 of each
// week starting there.
constexpr int kMonday = 2;

TEST(Semantics, NightVisitsLabelHome) {
  const std::vector<InferredLocation> inferred{{{0, 0}, 20}};
  std::vector<trace::CheckIn> observed;
  for (int d = 0; d < 20; ++d) observed.push_back(at({5, 5}, d, 23));

  const auto labels = label_locations(inferred, observed);
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0].semantic, LocationSemantic::kHome);
  EXPECT_DOUBLE_EQ(labels[0].night_fraction, 1.0);
  EXPECT_EQ(labels[0].visits, 20u);
}

TEST(Semantics, WeekdayOfficeHoursLabelWork) {
  const std::vector<InferredLocation> inferred{{{0, 0}, 20}};
  std::vector<trace::CheckIn> observed;
  for (int w = 0; w < 4; ++w) {
    for (int d = 0; d < 5; ++d) {
      observed.push_back(at({-3, 4}, kMonday + w * 7 + d, 11));
    }
  }
  const auto labels = label_locations(inferred, observed);
  EXPECT_EQ(labels[0].semantic, LocationSemantic::kWork);
  EXPECT_DOUBLE_EQ(labels[0].workday_fraction, 1.0);
}

TEST(Semantics, WeekendDaytimeIsOther) {
  const std::vector<InferredLocation> inferred{{{0, 0}, 10}};
  std::vector<trace::CheckIn> observed;
  for (int w = 0; w < 10; ++w) {
    observed.push_back(at({0, 0}, w * 7, 14));  // Saturdays at 2pm
  }
  const auto labels = label_locations(inferred, observed);
  EXPECT_EQ(labels[0].semantic, LocationSemantic::kOther);
}

TEST(Semantics, NightDominanceBeatsOfficeDominance) {
  // A place visited both at night and during office hours is a home
  // (people work from home; offices rarely host nights).
  const std::vector<InferredLocation> inferred{{{0, 0}, 20}};
  std::vector<trace::CheckIn> observed;
  for (int d = 0; d < 10; ++d) {
    observed.push_back(at({0, 0}, kMonday + (d % 5), 23));
    observed.push_back(at({0, 0}, kMonday + (d % 5), 10));
  }
  const auto labels = label_locations(inferred, observed);
  EXPECT_EQ(labels[0].semantic, LocationSemantic::kHome);
}

TEST(Semantics, AttributionPicksNearestLocation) {
  const std::vector<InferredLocation> inferred{{{0, 0}, 10},
                                               {{1000, 0}, 10}};
  std::vector<trace::CheckIn> observed;
  for (int d = 0; d < 10; ++d) {
    observed.push_back(at({100, 0}, d, 23));    // nearest: location 0
    observed.push_back(at({900, 0}, kMonday + (d % 5), 11));  // location 1
  }
  const auto labels = label_locations(inferred, observed);
  EXPECT_EQ(labels[0].semantic, LocationSemantic::kHome);
  EXPECT_EQ(labels[1].semantic, LocationSemantic::kWork);
}

TEST(Semantics, FarCheckInsAreIgnored) {
  const std::vector<InferredLocation> inferred{{{0, 0}, 10}};
  std::vector<trace::CheckIn> observed{at({50000, 50000}, 0, 23)};
  const auto labels = label_locations(inferred, observed);
  EXPECT_EQ(labels[0].visits, 0u);
  EXPECT_EQ(labels[0].semantic, LocationSemantic::kOther);
}

TEST(Semantics, RecoversPlantedStructureFromSyntheticUser) {
  // The generator plants home-at-night / work-by-day; the labeller must
  // recover it from the raw trace given the true anchors as "inferred".
  const rng::Engine parent(3);
  trace::SyntheticConfig config;
  config.min_check_ins = 800;
  config.max_check_ins = 1500;
  // Find a user with at least two anchors.
  for (std::uint64_t id = 0; id < 20; ++id) {
    const trace::SyntheticUser user = trace::generate_user(parent, config, id);
    if (user.truth.top_locations.size() < 2) continue;

    std::vector<InferredLocation> inferred;
    for (const geo::Point& top : user.truth.top_locations) {
      inferred.push_back({top, 1});
    }
    SemanticConfig sem;
    sem.attribution_radius_m = 100.0;
    const auto labels =
        label_locations(inferred, user.trace.check_ins, sem);
    EXPECT_EQ(labels[0].semantic, LocationSemantic::kHome)
        << "user " << id;
    return;  // one qualifying user is enough
  }
  FAIL() << "no synthetic user with 2+ anchors found";
}

TEST(Semantics, ToStringNames) {
  EXPECT_EQ(to_string(LocationSemantic::kHome), "home");
  EXPECT_EQ(to_string(LocationSemantic::kWork), "work");
  EXPECT_EQ(to_string(LocationSemantic::kOther), "other");
}

TEST(Semantics, DomainErrors) {
  SemanticConfig bad;
  bad.attribution_radius_m = 0.0;
  EXPECT_THROW(label_locations({}, {}, bad), util::InvalidArgument);
  bad = SemanticConfig{};
  bad.home_night_threshold = 1.0;
  EXPECT_THROW(label_locations({}, {}, bad), util::InvalidArgument);
}

}  // namespace
}  // namespace privlocad::attack
