// Tests for the trace module: check-in utilities, the synthetic generator's
// calibration, and CSV round trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "attack/profile.hpp"
#include "rng/engine.hpp"
#include "stats/quantiles.hpp"
#include "stats/running_stats.hpp"
#include "trace/check_in.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_io.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/validation.hpp"

namespace privlocad::trace {
namespace {

SyntheticConfig small_config() {
  SyntheticConfig c;
  c.max_check_ins = 500;  // keep unit tests fast
  return c;
}

// ----------------------------------------------------------- check_in ops

TEST(CheckIn, SliceByTimeKeepsHalfOpenWindow) {
  UserTrace trace;
  trace.user_id = 7;
  trace.check_ins = {{{0, 0}, 100}, {{1, 1}, 200}, {{2, 2}, 300}};
  const UserTrace sliced = slice_by_time(trace, 100, 300);
  ASSERT_EQ(sliced.check_ins.size(), 2u);
  EXPECT_EQ(sliced.user_id, 7u);
  EXPECT_EQ(sliced.check_ins[0].time, 100);
  EXPECT_EQ(sliced.check_ins[1].time, 200);
}

TEST(CheckIn, PositionsExtractsInOrder) {
  UserTrace trace;
  trace.check_ins = {{{1, 2}, 0}, {{3, 4}, 1}};
  const auto pos = positions(trace);
  ASSERT_EQ(pos.size(), 2u);
  EXPECT_EQ(pos[1], (geo::Point{3, 4}));
}

TEST(CheckIn, StudyWindowIsTwoYears) {
  const double days =
      static_cast<double>(kStudyEnd - kStudyStart) / kSecondsPerDay;
  EXPECT_NEAR(days, 730.0, 1.0);
}

// -------------------------------------------------------------- generator

TEST(Synthetic, DeterministicPerUserId) {
  const rng::Engine parent(42);
  const SyntheticConfig config = small_config();
  const SyntheticUser a = generate_user(parent, config, 17);
  const SyntheticUser b = generate_user(parent, config, 17);
  ASSERT_EQ(a.trace.check_ins.size(), b.trace.check_ins.size());
  for (std::size_t i = 0; i < a.trace.check_ins.size(); ++i) {
    EXPECT_EQ(a.trace.check_ins[i].position, b.trace.check_ins[i].position);
    EXPECT_EQ(a.trace.check_ins[i].time, b.trace.check_ins[i].time);
  }
}

TEST(Synthetic, DifferentUsersDiffer) {
  const rng::Engine parent(42);
  const SyntheticConfig config = small_config();
  const SyntheticUser a = generate_user(parent, config, 1);
  const SyntheticUser b = generate_user(parent, config, 2);
  EXPECT_NE(a.trace.check_ins.size(), 0u);
  const bool same_first =
      !a.trace.check_ins.empty() && !b.trace.check_ins.empty() &&
      a.trace.check_ins[0].position == b.trace.check_ins[0].position;
  EXPECT_FALSE(same_first);
}

TEST(Synthetic, CheckInCountWithinConfiguredRange) {
  const rng::Engine parent(1);
  SyntheticConfig config;
  config.min_check_ins = 20;
  config.max_check_ins = 11435;
  for (std::uint64_t id = 0; id < 30; ++id) {
    const SyntheticUser u = generate_user(parent, config, id);
    EXPECT_GE(u.trace.check_ins.size(), 20u);
    EXPECT_LE(u.trace.check_ins.size(), 11435u);
  }
}

TEST(Synthetic, TimestampsSortedAndInWindow) {
  const rng::Engine parent(2);
  const SyntheticUser u = generate_user(parent, small_config(), 5);
  Timestamp last = kStudyStart;
  for (const CheckIn& c : u.trace.check_ins) {
    EXPECT_GE(c.time, last);
    EXPECT_LT(c.time, kStudyEnd);
    last = c.time;
  }
}

TEST(Synthetic, TruthWeightsAreOrderedAndSubUnit) {
  const rng::Engine parent(3);
  const SyntheticUser u = generate_user(parent, small_config(), 11);
  ASSERT_FALSE(u.truth.top_locations.empty());
  double sum = 0.0;
  double prev = 1.0;
  for (const double w : u.truth.weights) {
    EXPECT_LE(w, prev + 1e-12);
    EXPECT_GT(w, 0.0);
    prev = w;
    sum += w;
  }
  EXPECT_LE(sum, 1.0 + 1e-12);
}

TEST(Synthetic, Top1DominatesNomadicNoise) {
  const rng::Engine parent(4);
  SyntheticConfig config = small_config();
  config.min_check_ins = 300;  // enough mass for a stable estimate
  const SyntheticUser u = generate_user(parent, config, 23);
  // Top-1 should hold a clear plurality of all check-ins.
  EXPECT_GT(u.truth.weights.front(), 0.3);
}

TEST(Synthetic, CheckInsClusterAroundTruth) {
  const rng::Engine parent(5);
  SyntheticConfig config = small_config();
  config.min_check_ins = 200;
  const SyntheticUser u = generate_user(parent, config, 31);
  // Count check-ins within 50 m of the true top-1: should be roughly the
  // top-1 weight (jitter sigma 15 m keeps ~99% within 50 m).
  std::size_t close = 0;
  for (const CheckIn& c : u.trace.check_ins) {
    if (geo::distance(c.position, u.truth.top_locations.front()) < 50.0) {
      ++close;
    }
  }
  const double fraction = static_cast<double>(close) /
                          static_cast<double>(u.trace.check_ins.size());
  EXPECT_NEAR(fraction, u.truth.weights.front(), 0.05);
}

TEST(Synthetic, AnchorsRespectMinimumSeparation) {
  const rng::Engine parent(6);
  SyntheticConfig config = small_config();
  config.min_top_separation_m = 2000.0;
  for (std::uint64_t id = 0; id < 10; ++id) {
    const SyntheticUser u = generate_user(parent, config, id);
    const auto& tops = u.truth.top_locations;
    for (std::size_t i = 0; i < tops.size(); ++i) {
      for (std::size_t j = i + 1; j < tops.size(); ++j) {
        EXPECT_GE(geo::distance(tops[i], tops[j]), 2000.0);
      }
    }
  }
}

TEST(Synthetic, PopulationEntropyMatchesPaperShape) {
  // Paper Fig. 3: 88.8% of users have location entropy < 2 nats. The
  // synthetic population must land in that regime (wide tolerance; this
  // guards calibration, not the exact fraction).
  const rng::Engine parent(7);
  SyntheticConfig config;
  config.min_check_ins = 50;
  config.max_check_ins = 2000;
  const auto users = generate_population(parent, config, 60);
  std::size_t low_entropy = 0;
  for (const SyntheticUser& u : users) {
    const auto profile = attack::build_profile(u.trace);
    if (profile.entropy() < 2.0) ++low_entropy;
  }
  const double fraction =
      static_cast<double>(low_entropy) / static_cast<double>(users.size());
  EXPECT_GT(fraction, 0.7);
}

TEST(Synthetic, PopulationIsStableUnderSubsetting) {
  const rng::Engine parent(8);
  const SyntheticConfig config = small_config();
  const auto ten = generate_population(parent, config, 10);
  const auto five = generate_population(parent, config, 5);
  for (std::size_t i = 0; i < 5; ++i) {
    ASSERT_EQ(ten[i].trace.check_ins.size(), five[i].trace.check_ins.size());
    EXPECT_EQ(ten[i].trace.check_ins[0].position,
              five[i].trace.check_ins[0].position);
  }
}

TEST(Synthetic, CaseStudyUserMatchesPaperCounts) {
  const rng::Engine parent(9);
  const SyntheticUser u = generate_case_study_user(parent, small_config());
  // Paper Fig. 4 victim: 1,969 check-ins, 1,628 at the top-1 location.
  EXPECT_EQ(u.trace.check_ins.size(), 1969u);
  std::size_t top1 = 0;
  for (const CheckIn& c : u.trace.check_ins) {
    if (geo::distance(c.position, u.truth.top_locations.front()) < 100.0) {
      ++top1;
    }
  }
  EXPECT_NEAR(static_cast<double>(top1), 1628.0, 20.0);
  // One-year span.
  const Timestamp span =
      u.trace.check_ins.back().time - u.trace.check_ins.front().time;
  EXPECT_LE(span, 366 * kSecondsPerDay);
}

TEST(SyntheticMarkov, DwellSessionsCreateBursts) {
  SyntheticConfig config = small_config();
  config.min_check_ins = 400;
  config.temporal_model = SyntheticConfig::TemporalModel::kMarkovDwell;
  config.mean_dwell_check_ins = 10.0;
  const rng::Engine parent(21);
  const SyntheticUser user = generate_user(parent, config, 3);

  // Consecutive check-ins repeat their location class far more often than
  // under iid sampling: measure the fraction of consecutive pairs within
  // 100 m of each other.
  std::size_t sticky = 0;
  const auto& c = user.trace.check_ins;
  for (std::size_t i = 1; i < c.size(); ++i) {
    if (geo::distance(c[i].position, c[i - 1].position) < 100.0) ++sticky;
  }
  const double sticky_fraction =
      static_cast<double>(sticky) / static_cast<double>(c.size() - 1);
  // With mean dwell 10, ~90% of transitions stay in-session; iid traces
  // only repeat when two independent draws hit the same anchor (< ~75%
  // for a typical weight profile, and sessions also pin nomadic spots).
  EXPECT_GT(sticky_fraction, 0.80);
}

TEST(SyntheticMarkov, MarginalFrequenciesMatchIidModel) {
  // The dwell model must not change WHERE the user is overall, only the
  // ordering: top-1 weight stays comparable to the iid run.
  SyntheticConfig iid = small_config();
  iid.min_check_ins = 400;
  SyntheticConfig markov = iid;
  markov.temporal_model = SyntheticConfig::TemporalModel::kMarkovDwell;

  const rng::Engine parent(22);
  const SyntheticUser a = generate_user(parent, iid, 5);
  const SyntheticUser b = generate_user(parent, markov, 5);
  ASSERT_FALSE(a.truth.weights.empty());
  ASSERT_FALSE(b.truth.weights.empty());
  EXPECT_NEAR(a.truth.weights.front(), b.truth.weights.front(), 0.15);
}

TEST(SyntheticMarkov, ProfilingStillRecoversTruth) {
  SyntheticConfig config = small_config();
  config.min_check_ins = 400;
  config.temporal_model = SyntheticConfig::TemporalModel::kMarkovDwell;
  const rng::Engine parent(23);
  const SyntheticUser user = generate_user(parent, config, 7);
  const auto profile = attack::build_profile(user.trace);
  ASSERT_FALSE(profile.empty());
  EXPECT_LT(geo::distance(profile.top(0).location,
                          user.truth.top_locations.front()),
            25.0);
}

TEST(Synthetic, InvalidConfigRejected) {
  const rng::Engine parent(10);
  SyntheticConfig bad = small_config();
  bad.nomadic_fraction = 1.0;
  EXPECT_THROW(generate_user(parent, bad, 0), util::InvalidArgument);
  bad = small_config();
  bad.min_check_ins = 100;
  bad.max_check_ins = 50;
  EXPECT_THROW(generate_user(parent, bad, 0), util::InvalidArgument);
  bad = small_config();
  bad.window_start = bad.window_end;
  EXPECT_THROW(generate_user(parent, bad, 0), util::InvalidArgument);
}

TEST(Synthetic, CheckInCountsAreHeavyTailed) {
  // Log-uniform counts: the median across users should sit near the
  // geometric mean of the range, far below the arithmetic midpoint.
  const rng::Engine parent(31);
  SyntheticConfig config;
  config.min_check_ins = 20;
  config.max_check_ins = 11435;
  std::vector<double> counts;
  for (std::uint64_t id = 0; id < 120; ++id) {
    counts.push_back(static_cast<double>(
        generate_user(parent, config, id).trace.check_ins.size()));
  }
  const double median = stats::quantile(counts, 0.5);
  const double geometric_mean = std::sqrt(20.0 * 11435.0);  // ~478
  EXPECT_GT(median, geometric_mean / 3.0);
  EXPECT_LT(median, geometric_mean * 3.0);
  EXPECT_LT(median, (20.0 + 11435.0) / 2.0 / 2.0);  // << midpoint
}

TEST(CheckIn, SliceOfEmptyTraceIsEmpty) {
  UserTrace empty;
  empty.user_id = 3;
  const UserTrace sliced = slice_by_time(empty, 0, 100);
  EXPECT_TRUE(sliced.check_ins.empty());
  EXPECT_EQ(sliced.user_id, 3u);
}

// ------------------------------------------------------------------- IO

TEST(TraceIo, RoundTripPreservesData) {
  const rng::Engine parent(11);
  const auto users = generate_population(parent, small_config(), 3);
  std::vector<UserTrace> traces;
  for (const SyntheticUser& u : users) traces.push_back(u.trace);

  std::ostringstream out;
  write_traces(out, traces);
  std::istringstream in(out.str());
  const auto loaded = read_traces(in);

  ASSERT_EQ(loaded.size(), traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    ASSERT_EQ(loaded[i].check_ins.size(), traces[i].check_ins.size());
    EXPECT_EQ(loaded[i].user_id, traces[i].user_id);
    for (std::size_t j = 0; j < traces[i].check_ins.size(); ++j) {
      EXPECT_NEAR(loaded[i].check_ins[j].position.x,
                  traces[i].check_ins[j].position.x, 1e-3);
      EXPECT_EQ(loaded[i].check_ins[j].time, traces[i].check_ins[j].time);
    }
  }
}

TEST(TraceIo, GeoExportStaysInStudyBoxForCenteredTraces) {
  UserTrace trace;
  trace.user_id = 1;
  trace.check_ins = {{{0, 0}, 0}, {{1000, -1000}, 1}};
  std::ostringstream out;
  write_traces_geo(out, {trace}, geo::shanghai_projection());
  std::istringstream in(out.str());
  const auto table = util::read_csv(in);
  ASSERT_EQ(table.rows.size(), 2u);
  const double lat = util::parse_double(table.rows[0][table.column("lat_deg")]);
  const double lon = util::parse_double(table.rows[0][table.column("lon_deg")]);
  EXPECT_TRUE(geo::shanghai_geo_box().contains({lat, lon}));
}

TEST(TraceIo, MissingFilesThrow) {
  EXPECT_THROW(read_traces_file("/nonexistent/t.csv"), std::runtime_error);
}

TEST(TraceIo, CheckInsAreSortedByTimestampAfterLoad) {
  // Regression: rows landed in file order, so an out-of-order export made
  // profile windows and edge serving (which assume time-ordered traces)
  // operate on a scrambled timeline.
  std::istringstream in(
      "user_id,x_m,y_m,timestamp\n"
      "7,3.0,3.0,300\n"
      "7,1.0,1.0,100\n"
      "7,2.0,2.0,200\n");
  const auto traces = read_traces(in);
  ASSERT_EQ(traces.size(), 1u);
  ASSERT_EQ(traces[0].check_ins.size(), 3u);
  EXPECT_EQ(traces[0].check_ins[0].time, 100);
  EXPECT_EQ(traces[0].check_ins[1].time, 200);
  EXPECT_EQ(traces[0].check_ins[2].time, 300);
  EXPECT_NEAR(traces[0].check_ins[0].position.x, 1.0, 1e-9);
}

TEST(TraceIo, EqualTimestampsKeepFileOrder) {
  std::istringstream in(
      "user_id,x_m,y_m,timestamp\n"
      "1,10.0,0.0,50\n"
      "1,20.0,0.0,50\n");
  const auto traces = read_traces(in);
  ASSERT_EQ(traces[0].check_ins.size(), 2u);
  EXPECT_NEAR(traces[0].check_ins[0].position.x, 10.0, 1e-9);
  EXPECT_NEAR(traces[0].check_ins[1].position.x, 20.0, 1e-9);
}

TEST(TraceIo, MalformedTimestampNamesTheRow) {
  std::istringstream in(
      "user_id,x_m,y_m,timestamp\n"
      "1,0.0,0.0,0\n"
      "1,1.0,1.0,not-a-time\n");
  try {
    read_traces(in);
    FAIL() << "expected InvalidArgument";
  } catch (const util::InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("trace row 2"), std::string::npos);
    EXPECT_NE(what.find("not-a-time"), std::string::npos);
  }
}

TEST(TraceIo, NegativeTimestampRejected) {
  std::istringstream in(
      "user_id,x_m,y_m,timestamp\n"
      "1,0.0,0.0,-5\n");
  EXPECT_THROW(read_traces(in), util::InvalidArgument);
}

}  // namespace
}  // namespace privlocad::trace
