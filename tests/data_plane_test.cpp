// Tests for the columnar data plane: UserArena equivalence with the
// legacy per-user modules, snapshot round-trips (bit-identical serving
// across save / mmap-open), corruption handling, and shard-count
// invariance of the per-user RNG streams.
#include <gtest/gtest.h>
#include <unistd.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "core/concurrent_edge.hpp"
#include "core/edge_device.hpp"
#include "core/location_management.hpp"
#include "core/output_selection.hpp"
#include "core/snapshot.hpp"
#include "core/user_arena.hpp"
#include "lppm/gaussian.hpp"
#include "rng/engine.hpp"
#include "simd/soa.hpp"
#include "trace/check_in.hpp"
#include "util/status.hpp"

namespace privlocad {
namespace {

core::EdgeConfig fast_config() {
  core::EdgeConfig c;
  c.top_params.radius_m = 500.0;
  c.top_params.epsilon = 1.0;
  c.top_params.delta = 0.01;
  c.top_params.n = 10;
  c.management.window_seconds = 1000;
  return c;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

/// A served output reduced to comparable bits: outcome, kind, and the
/// exact coordinate bit patterns (bit-identity is the contract).
using ServedBits =
    std::tuple<int, int, std::uint64_t, std::uint64_t, std::uint32_t>;

ServedBits bits_of(const core::ServeResult& r) {
  return {static_cast<int>(r.outcome), static_cast<int>(r.reported.kind),
          std::bit_cast<std::uint64_t>(r.reported.location.x),
          std::bit_cast<std::uint64_t>(r.reported.location.y), r.retries};
}

/// One user's deterministic mixed workload: check-ins at home (top after
/// the import) interleaved with far-away nomadic positions.
std::vector<trace::CheckIn> probe_stream(std::uint64_t user_id, int n) {
  std::vector<trace::CheckIn> probes;
  const geo::Point home{1000.0 * static_cast<double>(user_id % 97), 500.0};
  for (int i = 0; i < n; ++i) {
    const trace::Timestamp t = trace::kStudyStart + 2000 + i * 17;
    if (i % 3 == 2) {
      probes.push_back({{home.x + 40000.0, home.y - 35000.0 + i}, t});
    } else {
      probes.push_back({home, t});
    }
  }
  return probes;
}

trace::UserTrace history_for(std::uint64_t user_id, int check_ins = 40) {
  trace::UserTrace history;
  history.user_id = user_id;
  const geo::Point home{1000.0 * static_cast<double>(user_id % 97), 500.0};
  for (int i = 0; i < check_ins; ++i) {
    history.check_ins.push_back({home, trace::kStudyStart + i * 13});
  }
  return history;
}

// ------------------------------------------------- arena golden equivalence

TEST(UserArena, MatchesLocationManagerThroughManyWindows) {
  const core::LocationManagementConfig config{
      .window_seconds = 500, .min_window_check_ins = 5};
  core::LocationManager manager(config);
  core::UserArena arena{rng::Engine(7)};
  const core::UserArena::Row row = arena.find_or_create(42);

  // Two alternating anchors plus drift so rebuilds produce multi-entry
  // profiles whose top sets actually change across windows.
  rng::Engine jitter(99);
  for (int i = 0; i < 4000; ++i) {
    const bool at_home = i % 3 != 1;
    const geo::Point p{(at_home ? 0.0 : 5000.0) + jitter.uniform() * 10.0,
                       (at_home ? 0.0 : -3000.0) + jitter.uniform() * 10.0};
    const trace::Timestamp t = trace::kStudyStart + i * 40;
    const bool rebuilt_legacy = manager.record(p, t);
    const bool rebuilt_arena = arena.record(row, p, t, config);
    ASSERT_EQ(rebuilt_legacy, rebuilt_arena) << "at check-in " << i;
  }
  ASSERT_TRUE(manager.profile().has_value());
  ASSERT_TRUE(arena.has_profile(row));
  ASSERT_EQ(manager.profile()->size(), arena.profile_size(row));
  for (std::size_t i = 0; i < arena.profile_size(row); ++i) {
    const attack::ProfileEntry& legacy = manager.profile()->entries()[i];
    const attack::ProfileEntry ours = arena.profile_entry(row, i);
    EXPECT_EQ(legacy.frequency, ours.frequency);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(legacy.location.x),
              std::bit_cast<std::uint64_t>(ours.location.x));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(legacy.location.y),
              std::bit_cast<std::uint64_t>(ours.location.y));
  }
  ASSERT_EQ(manager.top_locations().size(), arena.top_size(row));
  for (std::size_t i = 0; i < arena.top_size(row); ++i) {
    EXPECT_EQ(manager.top_locations()[i].frequency,
              arena.top_entry(row, i).frequency);
  }
  EXPECT_EQ(manager.pending_check_ins(), arena.pending_check_ins(row));
  EXPECT_EQ(manager.total_check_ins(), arena.total_check_ins(row));

  // Compaction is a pure storage transform: state must be unchanged.
  const auto profile_before = arena.profile_of(row);
  arena.compact();
  EXPECT_EQ(profile_before.entries().size(), arena.profile_size(row));
  for (std::size_t i = 0; i < arena.profile_size(row); ++i) {
    EXPECT_EQ(profile_before.entries()[i].frequency,
              arena.profile_entry(row, i).frequency);
  }
  EXPECT_EQ(manager.pending_check_ins(), arena.pending_check_ins(row));
}

TEST(UserArena, DirectoryScalesToManyUsers) {
  core::UserArena arena{rng::Engine(3)};
  constexpr std::uint64_t kUsers = 10000;
  for (std::uint64_t u = 0; u < kUsers; ++u) {
    const core::UserArena::Row row = arena.find_or_create(u * 977 + 5);
    ASSERT_EQ(arena.user_id(row), u * 977 + 5);
  }
  EXPECT_EQ(arena.size(), kUsers);
  for (std::uint64_t u = 0; u < kUsers; ++u) {
    const core::UserArena::Row row = arena.find(u * 977 + 5);
    ASSERT_NE(row, core::UserArena::kNoRow);
    EXPECT_EQ(arena.user_id(row), u * 977 + 5);
  }
  EXPECT_EQ(arena.find(123456789), core::UserArena::kNoRow);
}

// ------------------------------------------------------ selection span API

TEST(OutputSelectionSpan, SpanAndVectorOverloadsAgreeBitwise) {
  std::vector<geo::Point> candidates;
  rng::Engine e(11);
  for (int i = 0; i < 10; ++i) {
    candidates.push_back({e.uniform() * 1000.0, e.uniform() * 1000.0});
  }
  simd::SoaPoints soa;
  soa.assign(candidates);

  const std::vector<double> from_vector =
      core::selection_probabilities(candidates, 300.0);
  const std::vector<double> from_span =
      core::selection_probabilities(soa.span(), 300.0);
  ASSERT_EQ(from_vector.size(), from_span.size());
  for (std::size_t i = 0; i < from_vector.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(from_vector[i]),
              std::bit_cast<std::uint64_t>(from_span[i]));
  }

  rng::Engine ev(21), es(21);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(core::select_candidate(ev, candidates, 300.0),
              core::select_candidate(es, soa.span(), 300.0));
  }
}

// -------------------------------------------------- snapshot round-tripping

TEST(Snapshot, EdgeDeviceRoundTripServesBitIdentically) {
  const std::string path = temp_path("device_roundtrip.snap");
  constexpr int kUsers = 30;

  core::EdgeDevice saved(fast_config().with_seed(5));
  for (int u = 1; u <= kUsers; ++u) {
    saved.import_history(u, history_for(u));
    // Warm some frozen candidate sets pre-snapshot.
    (void)saved.serve(u, probe_stream(u, 1)[0].position,
                      trace::kStudyStart + 1500);
  }
  saved.set_user_privacy(3, {.radius_m = 250.0, .epsilon = 2.0,
                             .delta = 0.01, .n = 5});
  ASSERT_TRUE(saved.save_snapshot(path).ok());

  core::EdgeDevice reopened(fast_config().with_seed(5));
  ASSERT_TRUE(reopened.open_snapshot(path).ok());
  EXPECT_EQ(reopened.user_count(), saved.user_count());
  EXPECT_GT(reopened.data_plane_mapped_bytes(), 0u);

  // Same probe streams through both devices: every served output must be
  // bit-identical, including the personalized-params user.
  const core::EdgeTelemetry tel_a0 = saved.telemetry();
  const core::EdgeTelemetry tel_b0 = reopened.telemetry();
  for (int u = 1; u <= kUsers; ++u) {
    for (const trace::CheckIn& c : probe_stream(u, 30)) {
      const core::ServeResult a = saved.serve(u, c.position, c.time);
      const core::ServeResult b = reopened.serve(u, c.position, c.time);
      ASSERT_EQ(bits_of(a), bits_of(b)) << "user " << u;
    }
  }
  EXPECT_EQ(std::bit_cast<std::uint64_t>(
                reopened.user_privacy(3).radius_m),
            std::bit_cast<std::uint64_t>(saved.user_privacy(3).radius_m));

  // The outcome-counter deltas partition identically too.
  const core::EdgeTelemetry tel_a = saved.telemetry();
  const core::EdgeTelemetry tel_b = reopened.telemetry();
  EXPECT_EQ(tel_a.requests - tel_a0.requests,
            tel_b.requests - tel_b0.requests);
  EXPECT_EQ(tel_a.top_reports - tel_a0.top_reports,
            tel_b.top_reports - tel_b0.top_reports);
  EXPECT_EQ(tel_a.nomadic_reports - tel_a0.nomadic_reports,
            tel_b.nomadic_reports - tel_b0.nomadic_reports);
  EXPECT_EQ(tel_a.tables_generated - tel_a0.tables_generated,
            tel_b.tables_generated - tel_b0.tables_generated);
  std::remove(path.c_str());
}

TEST(Snapshot, ConcurrentEdgeRoundTripAtEveryShardCount) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{8}}) {
    const std::string path =
        temp_path("edge_roundtrip_" + std::to_string(shards) + ".snap");
    core::ConcurrentEdge saved(
        fast_config().with_seed(9).with_shards(shards));
    for (int u = 1; u <= 20; ++u) {
      saved.import_history(u, history_for(u));
    }
    ASSERT_TRUE(saved.save_snapshot(path).ok());

    core::ConcurrentEdge reopened(
        fast_config().with_seed(9).with_shards(shards));
    ASSERT_TRUE(reopened.open_snapshot(path).ok());
    EXPECT_EQ(reopened.user_count(), saved.user_count());

    for (int u = 1; u <= 20; ++u) {
      for (const trace::CheckIn& c : probe_stream(u, 20)) {
        const core::ServeResult a = saved.serve(u, c.position, c.time);
        const core::ServeResult b = reopened.serve(u, c.position, c.time);
        ASSERT_EQ(bits_of(a), bits_of(b))
            << "user " << u << " at " << shards << " shards";
      }
    }
    std::remove(path.c_str());
  }
}

TEST(Snapshot, ServingIsShardCountInvariant) {
  // The same population at 1, 2, and 8 shards: every user's served
  // stream must be bit-identical, because each user's randomness is an
  // engine split from (seed, user id), never shared shard state.
  std::vector<std::vector<ServedBits>> per_shard_outputs;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{8}}) {
    core::ConcurrentEdge edge(
        fast_config().with_seed(31).with_shards(shards));
    std::vector<ServedBits> outputs;
    for (int u = 1; u <= 25; ++u) {
      edge.import_history(u, history_for(u));
      for (const trace::CheckIn& c : probe_stream(u, 15)) {
        outputs.push_back(bits_of(edge.serve(u, c.position, c.time)));
      }
    }
    per_shard_outputs.push_back(std::move(outputs));
  }
  EXPECT_EQ(per_shard_outputs[0], per_shard_outputs[1]);
  EXPECT_EQ(per_shard_outputs[0], per_shard_outputs[2]);
}

// ------------------------------------------------------- crash safety

// Regression: save_snapshot must be atomic. A writer that dies mid-save
// (simulated by destroying it without finish()) must leave the previous
// complete file at the final path and no temp-file debris -- pre-fix the
// writer streamed straight into the target and a crash left a truncated,
// unopenable hybrid where a valid snapshot used to be.
TEST(Snapshot, AbandonedWriterLeavesExistingSnapshotIntact) {
  const std::string path = temp_path("atomic_overwrite.snap");
  core::EdgeDevice saved(fast_config().with_seed(7));
  saved.import_history(1, history_for(1));
  ASSERT_TRUE(saved.save_snapshot(path).ok());

  {
    core::snapshot::Writer dying(path, 1);
    dying.write_u64(0xDEADBEEFULL);
    const std::vector<std::uint64_t> column(4096, 42);
    dying.write_column(column);
    // Scope exit without finish(): the crash-unwinding path.
  }

  // The original snapshot still opens and validates.
  core::EdgeDevice fresh(fast_config().with_seed(7));
  EXPECT_TRUE(fresh.open_snapshot(path).ok());
  EXPECT_EQ(fresh.user_count(), 1u);
  // No temp file left behind.
  EXPECT_NE(::access((path + ".tmp").c_str(), F_OK), 0);
  std::remove(path.c_str());
}

TEST(Snapshot, AbandonedWriterCreatesNothingAtTheFinalPath) {
  const std::string path = temp_path("atomic_fresh.snap");
  std::remove(path.c_str());
  {
    core::snapshot::Writer dying(path, 1);
    dying.write_u64(1);
  }
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
  EXPECT_NE(::access((path + ".tmp").c_str(), F_OK), 0);
}

TEST(Snapshot, FinishPublishesExactlyOnceAndCleansUp) {
  const std::string path = temp_path("atomic_publish.snap");
  core::EdgeDevice saved(fast_config().with_seed(7));
  saved.import_history(1, history_for(1));
  ASSERT_TRUE(saved.save_snapshot(path).ok());
  // The published file is complete and the temp name is gone.
  EXPECT_EQ(::access(path.c_str(), F_OK), 0);
  EXPECT_NE(::access((path + ".tmp").c_str(), F_OK), 0);
  core::EdgeDevice fresh(fast_config().with_seed(7));
  EXPECT_TRUE(fresh.open_snapshot(path).ok());
  std::remove(path.c_str());
}

TEST(Snapshot, UnwritableDirectoryIsATypedIoError) {
  core::snapshot::Writer writer("/nonexistent-dir-privlocad/file.snap", 1);
  EXPECT_EQ(writer.status().code(), util::ErrorCode::kIoError);
  writer.write_u64(1);  // latched: a no-op, not a crash
  EXPECT_EQ(writer.finish().code(), util::ErrorCode::kIoError);
}

// ---------------------------------------------------- corruption handling

TEST(Snapshot, CorruptedChecksumIsATypedParseError) {
  const std::string path = temp_path("corrupt.snap");
  core::EdgeDevice saved(fast_config().with_seed(2));
  saved.import_history(1, history_for(1));
  ASSERT_TRUE(saved.save_snapshot(path).ok());

  // Flip one payload byte past the header.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, core::snapshot::kHeaderBytes + 96, SEEK_SET), 0);
  const int byte = std::fgetc(f);
  ASSERT_NE(byte, EOF);
  ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
  std::fputc(byte ^ 0x40, f);
  std::fclose(f);

  core::EdgeDevice fresh(fast_config().with_seed(2));
  const util::Status status = fresh.open_snapshot(path);
  EXPECT_EQ(status.code(), util::ErrorCode::kParseError);
  EXPECT_NE(status.message().find("checksum"), std::string::npos);
  EXPECT_EQ(fresh.user_count(), 0u);
  std::remove(path.c_str());
}

TEST(Snapshot, TruncationAndBadMagicAreTypedErrors) {
  const std::string truncated = temp_path("truncated.snap");
  core::EdgeDevice saved(fast_config().with_seed(2));
  saved.import_history(1, history_for(1));
  ASSERT_TRUE(saved.save_snapshot(truncated).ok());
  ASSERT_EQ(::truncate(truncated.c_str(), 100), 0);
  core::EdgeDevice fresh(fast_config().with_seed(2));
  EXPECT_EQ(fresh.open_snapshot(truncated).code(),
            util::ErrorCode::kParseError);
  std::remove(truncated.c_str());

  const std::string garbage = temp_path("garbage.snap");
  std::FILE* f = std::fopen(garbage.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  for (int i = 0; i < 200; ++i) std::fputc(i & 0xFF, f);
  std::fclose(f);
  core::EdgeDevice fresh2(fast_config().with_seed(2));
  EXPECT_EQ(fresh2.open_snapshot(garbage).code(),
            util::ErrorCode::kParseError);
  EXPECT_EQ(fresh2.open_snapshot("/nonexistent/dir/missing.snap").code(),
            util::ErrorCode::kIoError);
  std::remove(garbage.c_str());
}

TEST(Snapshot, PreconditionsAreTypedFailures) {
  const std::string path = temp_path("preconditions.snap");
  core::ConcurrentEdge saved(fast_config().with_seed(4).with_shards(2));
  saved.import_history(1, history_for(1));
  ASSERT_TRUE(saved.save_snapshot(path).ok());

  // Shard-count mismatch.
  core::ConcurrentEdge wrong_shards(
      fast_config().with_seed(4).with_shards(4));
  EXPECT_EQ(wrong_shards.open_snapshot(path).code(),
            util::ErrorCode::kFailedPrecondition);

  // A standalone device cannot open a multi-shard snapshot.
  core::EdgeDevice device(fast_config().with_seed(4));
  EXPECT_EQ(device.open_snapshot(path).code(),
            util::ErrorCode::kFailedPrecondition);

  // Opening over live users is refused.
  core::ConcurrentEdge busy(fast_config().with_seed(4).with_shards(2));
  busy.import_history(9, history_for(9));
  EXPECT_EQ(busy.open_snapshot(path).code(),
            util::ErrorCode::kFailedPrecondition);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace privlocad
