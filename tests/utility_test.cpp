// Tests for the utility metrics: utilization rate and advertising efficacy.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "lppm/gaussian.hpp"
#include "lppm/planar_laplace.hpp"
#include "rng/engine.hpp"
#include "utility/metrics.hpp"
#include "utility/quality_loss.hpp"
#include "util/validation.hpp"

namespace privlocad::utility {
namespace {

constexpr double kR = 5000.0;  // the paper's targeting radius R = 5 km

// --------------------------------------------------------------- UR single

TEST(UtilizationSingle, IdenticalCirclesGiveOne) {
  EXPECT_NEAR(utilization_rate_single({0, 0}, {0, 0}, kR), 1.0, 1e-12);
}

TEST(UtilizationSingle, DisjointCirclesGiveZero) {
  EXPECT_DOUBLE_EQ(utilization_rate_single({0, 0}, {2 * kR + 1, 0}, kR), 0.0);
}

TEST(UtilizationSingle, KnownLensValue) {
  // Offset d = R: UR = (2*pi/3 - sqrt(3)/2) / pi for unit-ratio circles.
  const double expected =
      (2.0 * std::numbers::pi / 3.0 - std::sqrt(3.0) / 2.0) / std::numbers::pi;
  EXPECT_NEAR(utilization_rate_single({0, 0}, {kR, 0}, kR), expected, 1e-12);
}

TEST(UtilizationSingle, MonotoneInDisplacement) {
  double prev = 1.0;
  for (double d = 0.0; d <= 2.0 * kR; d += kR / 4.0) {
    const double ur = utilization_rate_single({0, 0}, {d, 0}, kR);
    EXPECT_LE(ur, prev + 1e-12);
    prev = ur;
  }
}

// ------------------------------------------------------------ UR candidate

TEST(Utilization, SingleCandidateUsesExactForm) {
  rng::Engine e(1);
  const double mc =
      utilization_rate(e, {0, 0}, {geo::Point{kR, 0}}, kR, 16);
  EXPECT_NEAR(mc, utilization_rate_single({0, 0}, {kR, 0}, kR), 1e-12);
}

TEST(Utilization, UnionOfCandidatesCoversMore) {
  rng::Engine e(2);
  // Two candidates straddling the truth cover more than either alone.
  const std::vector<geo::Point> both{{kR * 0.8, 0}, {-kR * 0.8, 0}};
  const double ur_both = utilization_rate(e, {0, 0}, both, kR, 20000);
  const double ur_one = utilization_rate_single({0, 0}, both[0], kR);
  EXPECT_GT(ur_both, ur_one + 0.05);
}

TEST(Utilization, PerfectCandidateDominatesUnion) {
  rng::Engine e(3);
  const std::vector<geo::Point> with_perfect{{0, 0}, {3 * kR, 0}};
  EXPECT_NEAR(utilization_rate(e, {0, 0}, with_perfect, kR, 20000), 1.0,
              0.01);
}

TEST(Utilization, MonteCarloMatchesExactOnTwoCandidateUnion) {
  // Validate the estimator against inclusion-exclusion on a symmetric
  // two-circle union where the exact value is computable: candidates at
  // +/-d on the x axis. |AOI ∩ (A ∪ B)| = 2*lens(d) - lens_overlap where
  // by symmetry lens_overlap = |AOI ∩ A ∩ B|. Choose d so A ∩ B ∩ AOI
  // = A ∩ B (the pair intersection is contained in the AOI).
  rng::Engine e(4);
  const double d = kR / 2.0;
  const std::vector<geo::Point> candidates{{d, 0}, {-d, 0}};
  const double lens_each = utilization_rate_single({0, 0}, {d, 0}, kR);
  // A and B are 2d = R apart; their lens lies within kR/2 + something of
  // origin -- fully inside AOI for d = R/2 (max extent of A∩B from origin
  // is sqrt(R^2 - d^2) < R). So exact = 2*lens_each - lens(A,B)/|AOI|.
  const double lens_ab = utilization_rate_single({d, 0}, {-d, 0}, kR);
  const double exact = 2.0 * lens_each - lens_ab;
  const double mc = utilization_rate(e, {0, 0}, candidates, kR, 50000);
  EXPECT_NEAR(mc, exact, 0.01);
}

TEST(Utilization, DomainErrors) {
  rng::Engine e(5);
  EXPECT_THROW(utilization_rate(e, {0, 0}, {}, kR), util::InvalidArgument);
  EXPECT_THROW(utilization_rate(e, {0, 0}, {geo::Point{0, 0}}, -1.0),
               util::InvalidArgument);
  EXPECT_THROW(utilization_rate(e, {0, 0}, {geo::Point{0, 0}, {1, 1}}, kR, 0),
               util::InvalidArgument);
}

// ----------------------------------------------------------------- efficacy

TEST(Efficacy, SingleEqualsLensFraction) {
  EXPECT_NEAR(efficacy_single({0, 0}, {0, 0}, kR), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(efficacy_single({0, 0}, {3 * kR, 0}, kR), 0.0);
}

TEST(Efficacy, WeightedAveragesOverSelection) {
  const std::vector<geo::Point> candidates{{0, 0}, {2 * kR + 1, 0}};
  // All weight on the perfect candidate -> efficacy 1.
  EXPECT_NEAR(efficacy_weighted({0, 0}, candidates, {1.0, 0.0}, kR), 1.0,
              1e-12);
  // Even split -> 0.5.
  EXPECT_NEAR(efficacy_weighted({0, 0}, candidates, {0.5, 0.5}, kR), 0.5,
              1e-12);
}

TEST(Efficacy, WeightedValidatesInputs) {
  const std::vector<geo::Point> candidates{{0, 0}};
  EXPECT_THROW(efficacy_weighted({0, 0}, candidates, {0.5}, kR),
               util::InvalidArgument);
  EXPECT_THROW(efficacy_weighted({0, 0}, candidates, {0.5, 0.5}, kR),
               util::InvalidArgument);
  EXPECT_THROW(efficacy_weighted({0, 0}, {}, {}, kR), util::InvalidArgument);
}

TEST(Efficacy, MonteCarloAgreesWithExact) {
  rng::Engine e(6);
  const geo::Point candidate{kR * 0.6, kR * 0.3};
  const double exact = efficacy_single({0, 0}, candidate, kR);
  const double mc = efficacy_monte_carlo(e, {0, 0}, candidate, kR, 100000);
  EXPECT_NEAR(mc, exact, 0.01);
}

TEST(Efficacy, MonteCarloDomainErrors) {
  rng::Engine e(7);
  EXPECT_THROW(efficacy_monte_carlo(e, {0, 0}, {0, 0}, 0.0),
               util::InvalidArgument);
  EXPECT_THROW(efficacy_monte_carlo(e, {0, 0}, {0, 0}, kR, 0),
               util::InvalidArgument);
}

// ------------------------------------------------------------ quality loss

TEST(QualityLoss, LaplaceMeanMatchesTwoOverEps) {
  const lppm::PlanarLaplaceMechanism mech({std::log(4.0), 200.0});
  rng::Engine e(11);
  const auto report =
      evaluate_quality_loss(e, mech, {1000.0, -2000.0}, 5000);
  const double expected = 2.0 / mech.epsilon();
  EXPECT_NEAR(report.mean_m, expected, expected * 0.05);
  EXPECT_LT(report.median_m, report.mean_m);  // right-skewed Gamma(2)
  EXPECT_GT(report.p95_m, report.mean_m);
  EXPECT_GE(report.worst_m, report.p95_m);
  EXPECT_EQ(report.outputs, 5000u);
}

TEST(QualityLoss, MultiOutputMechanismCountsEveryPoint) {
  lppm::BoundedGeoIndParams params;
  params.radius_m = 500.0;
  params.epsilon = 1.0;
  params.delta = 0.01;
  params.n = 10;
  const lppm::NFoldGaussianMechanism mech(params);
  rng::Engine e(12);
  const auto report = evaluate_quality_loss(e, mech, {0, 0}, 100);
  EXPECT_EQ(report.outputs, 1000u);
  // Mean displacement of a 2-D Gaussian: sigma * sqrt(pi / 2).
  const double expected = mech.sigma() * std::sqrt(std::numbers::pi / 2.0);
  EXPECT_NEAR(report.mean_m, expected, expected * 0.10);
}

TEST(QualityLoss, ZeroTrialsRejected) {
  const lppm::PlanarLaplaceMechanism mech({std::log(4.0), 200.0});
  rng::Engine e(13);
  EXPECT_THROW(evaluate_quality_loss(e, mech, {0, 0}, 0),
               util::InvalidArgument);
}

// Parameterized sweep: UR-single and efficacy agree (equal radii) across
// displacement grid -- the symmetry the output-selection analysis uses.
class SymmetryProperty : public ::testing::TestWithParam<double> {};

TEST_P(SymmetryProperty, UrEqualsEfficacyForEqualRadii) {
  const double d = GetParam();
  EXPECT_NEAR(utilization_rate_single({0, 0}, {d, 0}, kR),
              efficacy_single({0, 0}, {d, 0}, kR), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Displacements, SymmetryProperty,
                         ::testing::Values(0.0, 1000.0, 2500.0, 5000.0,
                                           7500.0, 9999.0, 12000.0));

}  // namespace
}  // namespace privlocad::utility
