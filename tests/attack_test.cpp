// Tests for the attack module: clustering invariants, profiling, the
// Algorithm-1 de-obfuscation attack, and success-rate accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "attack/clustering.hpp"
#include "attack/deobfuscation.hpp"
#include "attack/evaluation.hpp"
#include "attack/profile.hpp"
#include "lppm/planar_laplace.hpp"
#include "rng/engine.hpp"
#include "rng/samplers.hpp"
#include "trace/synthetic.hpp"
#include "util/validation.hpp"

namespace privlocad::attack {
namespace {

// --------------------------------------------------------------- clustering

TEST(Clustering, EmptyInputYieldsNoClusters) {
  EXPECT_TRUE(connectivity_clusters({}, 50.0).empty());
}

TEST(Clustering, SingletonsWhenAllFar) {
  const std::vector<geo::Point> points{{0, 0}, {1000, 0}, {0, 1000}};
  const auto clusters = connectivity_clusters(points, 50.0);
  EXPECT_EQ(clusters.size(), 3u);
  for (const auto& c : clusters) EXPECT_EQ(c.size(), 1u);
}

TEST(Clustering, TransitiveConnectivityMergesChains) {
  // 0-40-80-120: consecutive gaps 40 < 50, so one chain cluster even
  // though endpoints are 120 apart.
  const std::vector<geo::Point> points{{0, 0}, {40, 0}, {80, 0}, {120, 0}};
  const auto clusters = connectivity_clusters(points, 50.0);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].size(), 4u);
}

TEST(Clustering, StrictThresholdExcludesExactDistance) {
  const std::vector<geo::Point> points{{0, 0}, {50, 0}};
  const auto clusters = connectivity_clusters(points, 50.0);
  EXPECT_EQ(clusters.size(), 2u);  // dist == theta is NOT connected
}

TEST(Clustering, ClustersFormAPartition) {
  rng::Engine e(1);
  std::vector<geo::Point> points;
  for (int i = 0; i < 400; ++i) {
    points.push_back({e.uniform_in(-500, 500), e.uniform_in(-500, 500)});
  }
  const auto clusters = connectivity_clusters(points, 60.0);
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (const auto& c : clusters) {
    for (const std::size_t idx : c) {
      EXPECT_TRUE(seen.insert(idx).second) << "index in two clusters";
      ++total;
    }
  }
  EXPECT_EQ(total, points.size());
}

TEST(Clustering, OrderedBySizeDescending) {
  std::vector<geo::Point> points;
  for (int i = 0; i < 5; ++i) points.push_back({i * 10.0, 0.0});   // big
  for (int i = 0; i < 2; ++i) points.push_back({5000.0 + i, 0.0});  // small
  const auto clusters = connectivity_clusters(points, 50.0);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_GT(clusters[0].size(), clusters[1].size());
}

TEST(Clustering, CentroidOfCluster) {
  const std::vector<geo::Point> points{{0, 0}, {10, 0}, {20, 0}};
  const auto clusters = connectivity_clusters(points, 15.0);
  ASSERT_EQ(clusters.size(), 1u);
  const geo::Point c = cluster_centroid(points, clusters[0]);
  EXPECT_DOUBLE_EQ(c.x, 10.0);
  EXPECT_THROW(cluster_centroid(points, {}), util::InvalidArgument);
}

TEST(Clustering, RejectsNonPositiveThreshold) {
  EXPECT_THROW(connectivity_clusters({{0, 0}}, 0.0), util::InvalidArgument);
}

// ---------------------------------------------------------------- profile

TEST(Profile, BuildsFrequencyOrderedProfile) {
  std::vector<geo::Point> check_ins;
  for (int i = 0; i < 30; ++i) check_ins.push_back({0.0 + i * 0.1, 0.0});
  for (int i = 0; i < 10; ++i) check_ins.push_back({5000.0 + i * 0.1, 0.0});
  const LocationProfile profile = build_profile(check_ins);
  ASSERT_EQ(profile.size(), 2u);
  EXPECT_EQ(profile.top(0).frequency, 30u);
  EXPECT_EQ(profile.top(1).frequency, 10u);
  EXPECT_EQ(profile.total_frequency(), 40u);
  EXPECT_NEAR(profile.top(0).location.x, 1.45, 0.01);
}

TEST(Profile, EntropyMatchesEq3) {
  std::vector<geo::Point> check_ins;
  for (int i = 0; i < 50; ++i) check_ins.push_back({i * 0.01, 0.0});
  for (int i = 0; i < 50; ++i) check_ins.push_back({9000.0 + i * 0.01, 0.0});
  const LocationProfile profile = build_profile(check_ins);
  EXPECT_NEAR(profile.entropy(), std::log(2.0), 1e-9);
}

TEST(Profile, EmptyProfileBehaviour) {
  const LocationProfile profile = build_profile(std::vector<geo::Point>{});
  EXPECT_TRUE(profile.empty());
  EXPECT_EQ(profile.total_frequency(), 0u);
  EXPECT_THROW(profile.entropy(), util::InvalidArgument);
  EXPECT_THROW(profile.top(0), util::InvalidArgument);
}

TEST(Profile, ConstructorRejectsUnsortedEntries) {
  std::vector<ProfileEntry> unsorted{{{0, 0}, 1}, {{1, 1}, 5}};
  EXPECT_THROW(LocationProfile(std::move(unsorted)), util::InvalidArgument);
}

TEST(Profile, RecoversTruthFromSyntheticUser) {
  const rng::Engine parent(2);
  trace::SyntheticConfig config;
  config.min_check_ins = 400;
  config.max_check_ins = 800;
  const trace::SyntheticUser user = trace::generate_user(parent, config, 3);
  const LocationProfile profile = build_profile(user.trace);
  ASSERT_FALSE(profile.empty());
  // The heaviest profile cluster must sit on the true top-1 anchor.
  EXPECT_LT(geo::distance(profile.top(0).location,
                          user.truth.top_locations.front()),
            25.0);
}

// ------------------------------------------------------------ deobfuscation

DeobfuscationConfig attack_config_for_laplace(
    const lppm::PlanarLaplaceMechanism& mech, std::size_t top_n) {
  DeobfuscationConfig c;
  c.trim_radius_m = mech.tail_radius(0.05);  // the paper's r_0.05
  c.connectivity_threshold_m = c.trim_radius_m / 4.0;
  c.top_n = top_n;
  return c;
}

TEST(Deobfuscation, RecoversSingleTopLocationUnderOneTimeGeoInd) {
  // The paper's core finding: per-report planar Laplace noise averages out
  // over hundreds of observations of the same spot.
  const lppm::PlanarLaplaceMechanism mech({std::log(4.0), 200.0});
  rng::Engine e(3);
  const geo::Point home{1234.0, -987.0};
  std::vector<geo::Point> observed;
  for (int i = 0; i < 500; ++i) observed.push_back(mech.obfuscate_one(e, home));

  const auto inferred = deobfuscate_top_locations(
      observed, attack_config_for_laplace(mech, 1));
  ASSERT_EQ(inferred.size(), 1u);
  EXPECT_LT(geo::distance(inferred[0].location, home), 50.0);
  EXPECT_GT(inferred[0].support, 250u);
}

TEST(Deobfuscation, RecoversTwoTopLocations) {
  const lppm::PlanarLaplaceMechanism mech({std::log(4.0), 200.0});
  rng::Engine e(4);
  const geo::Point home{0.0, 0.0};
  const geo::Point office{8000.0, 2000.0};  // farther than the noise scale
  std::vector<geo::Point> observed;
  for (int i = 0; i < 600; ++i) observed.push_back(mech.obfuscate_one(e, home));
  for (int i = 0; i < 300; ++i) {
    observed.push_back(mech.obfuscate_one(e, office));
  }

  const auto inferred = deobfuscate_top_locations(
      observed, attack_config_for_laplace(mech, 2));
  ASSERT_EQ(inferred.size(), 2u);
  EXPECT_LT(geo::distance(inferred[0].location, home), 60.0);
  EXPECT_LT(geo::distance(inferred[1].location, office), 80.0);
}

TEST(Deobfuscation, AccuracyImprovesWithObservationCount) {
  // Fig. 4's qualitative claim: longer observation -> smaller error.
  const lppm::PlanarLaplaceMechanism mech({std::log(4.0), 200.0});
  const geo::Point home{0.0, 0.0};
  const DeobfuscationConfig config = attack_config_for_laplace(mech, 1);

  auto error_with = [&](int count, std::uint64_t seed) {
    rng::Engine e(seed);
    std::vector<geo::Point> observed;
    for (int i = 0; i < count; ++i) {
      observed.push_back(mech.obfuscate_one(e, home));
    }
    const auto inferred = deobfuscate_top_locations(observed, config);
    return geo::distance(inferred.at(0).location, home);
  };

  // Average over several seeds to keep the comparison stable.
  double err_small = 0.0, err_large = 0.0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    err_small += error_with(40, 100 + s);
    err_large += error_with(2000, 200 + s);
  }
  EXPECT_LT(err_large, err_small);
}

TEST(Deobfuscation, FewerLocationsThanRequestedIsGraceful) {
  const std::vector<geo::Point> tiny{{0, 0}, {1, 1}};
  DeobfuscationConfig c;
  c.top_n = 5;
  c.connectivity_threshold_m = 10.0;
  c.trim_radius_m = 10.0;
  const auto inferred = deobfuscate_top_locations(tiny, c);
  EXPECT_GE(inferred.size(), 1u);
  EXPECT_LE(inferred.size(), 5u);
}

TEST(Deobfuscation, EmptyInputYieldsNothing) {
  DeobfuscationConfig c;
  EXPECT_TRUE(deobfuscate_top_locations({}, c).empty());
}

TEST(Deobfuscation, TrimmingImprovesContaminatedCluster) {
  // A dense core at the origin with a thin chain of stragglers leaking out
  // to +x. The chain is connected (spacing < theta), so the untrimmed
  // largest-cluster centroid is dragged right; trimming at r_alpha cuts the
  // distant chain points and pulls the estimate back onto the core.
  rng::Engine e(5);
  const geo::Point center{0.0, 0.0};
  std::vector<geo::Point> observed;
  for (int i = 0; i < 300; ++i) {
    observed.push_back(center + rng::gaussian_noise(e, 60.0));
  }
  for (int i = 0; i < 40; ++i) {
    observed.push_back({40.0 + i * 20.0, 0.0});  // chain out to x = 820
  }

  DeobfuscationConfig with_trim;
  with_trim.connectivity_threshold_m = 25.0;
  with_trim.trim_radius_m = 150.0;
  with_trim.top_n = 1;
  DeobfuscationConfig no_trim = with_trim;
  no_trim.enable_trimming = false;

  const auto trimmed = deobfuscate_top_locations(observed, with_trim);
  const auto untrimmed = deobfuscate_top_locations(observed, no_trim);
  ASSERT_FALSE(trimmed.empty());
  ASSERT_FALSE(untrimmed.empty());
  EXPECT_LT(geo::distance(trimmed[0].location, center),
            geo::distance(untrimmed[0].location, center));
}

TEST(Deobfuscation, InvalidConfigRejected) {
  DeobfuscationConfig c;
  c.top_n = 0;
  EXPECT_THROW(deobfuscate_top_locations({{0, 0}}, c),
               util::InvalidArgument);
  c = DeobfuscationConfig{};
  c.trim_radius_m = -1.0;
  EXPECT_THROW(deobfuscate_top_locations({{0, 0}}, c),
               util::InvalidArgument);
}

// ------------------------------------------------ reusable attack workspace

namespace {

/// Two well-separated Laplace-noised anchors: enough structure to
/// exercise multi-round clustering, trimming, and the tombstone path.
std::vector<geo::Point> workspace_test_stream(std::uint64_t seed,
                                              int home_count,
                                              int office_count) {
  const lppm::PlanarLaplaceMechanism mech({std::log(4.0), 200.0});
  rng::Engine e(seed);
  std::vector<geo::Point> observed;
  observed.reserve(static_cast<std::size_t>(home_count + office_count));
  for (int i = 0; i < home_count; ++i) {
    observed.push_back(mech.obfuscate_one(e, {0.0, 0.0}));
  }
  for (int i = 0; i < office_count; ++i) {
    observed.push_back(mech.obfuscate_one(e, {8000.0, 2000.0}));
  }
  return observed;
}

void expect_same_inference(const std::vector<InferredLocation>& a,
                           const std::vector<InferredLocation>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].location.x, b[i].location.x);
    EXPECT_DOUBLE_EQ(a[i].location.y, b[i].location.y);
    EXPECT_EQ(a[i].support, b[i].support);
  }
}

}  // namespace

TEST(DeobfuscationWorkspace, MatchesSingleShotOverloadBitForBit) {
  const lppm::PlanarLaplaceMechanism mech({std::log(4.0), 200.0});
  const DeobfuscationConfig config = attack_config_for_laplace(mech, 2);
  const auto observed = workspace_test_stream(11, 600, 300);

  DeobfuscationWorkspace workspace;
  expect_same_inference(
      deobfuscate_top_locations(observed, config, workspace),
      deobfuscate_top_locations(observed, config));
}

TEST(DeobfuscationWorkspace, ReuseAcrossCallsLeavesNoResidue) {
  // A workspace that has seen a LARGE input must produce the same result
  // on a small input as a fresh one: every buffer is fully re-seeded.
  const lppm::PlanarLaplaceMechanism mech({std::log(4.0), 200.0});
  const DeobfuscationConfig config = attack_config_for_laplace(mech, 2);

  DeobfuscationWorkspace reused;
  (void)deobfuscate_top_locations(workspace_test_stream(13, 2000, 900),
                                  config, reused);

  const auto small = workspace_test_stream(17, 250, 120);
  DeobfuscationWorkspace fresh;
  expect_same_inference(deobfuscate_top_locations(small, config, reused),
                        deobfuscate_top_locations(small, config, fresh));
}

TEST(DeobfuscationWorkspace, RepeatedCallsAreIdempotent) {
  const lppm::PlanarLaplaceMechanism mech({std::log(4.0), 200.0});
  const DeobfuscationConfig config = attack_config_for_laplace(mech, 2);
  const auto observed = workspace_test_stream(19, 500, 250);

  DeobfuscationWorkspace workspace;
  const auto first = deobfuscate_top_locations(observed, config, workspace);
  const auto second = deobfuscate_top_locations(observed, config, workspace);
  expect_same_inference(first, second);
}

TEST(DeobfuscationWorkspace, EmptyAndTinyInputs) {
  DeobfuscationConfig c;
  c.top_n = 3;
  c.connectivity_threshold_m = 10.0;
  c.trim_radius_m = 10.0;
  DeobfuscationWorkspace workspace;
  EXPECT_TRUE(deobfuscate_top_locations({}, c, workspace).empty());
  const auto tiny =
      deobfuscate_top_locations({{0.0, 0.0}, {1.0, 1.0}}, c, workspace);
  EXPECT_GE(tiny.size(), 1u);
  EXPECT_LE(tiny.size(), 3u);
}

TEST(DeobfuscationWorkspace, ZeroSupportClusterReportsMinimumSupport) {
  // Trimming with a tiny r_alpha can empty the cluster (support == 0 path):
  // two far-apart singleton "clusters" and a trim radius smaller than the
  // centroid-to-member distance do it deterministically.
  DeobfuscationConfig c;
  c.connectivity_threshold_m = 15.0;
  c.trim_radius_m = 2.0;
  c.top_n = 2;
  // One 2-point cluster whose centroid is > 2 m from both members.
  const std::vector<geo::Point> observed{{0.0, 0.0}, {10.0, 0.0},
                                         {500.0, 500.0}};
  DeobfuscationWorkspace workspace;
  const auto inferred = deobfuscate_top_locations(observed, c, workspace);
  ASSERT_EQ(inferred.size(), 2u);
  for (const InferredLocation& loc : inferred) {
    EXPECT_GE(loc.support, 1u);  // reported support is floored at 1
  }
  // The rounds must still consume the points and terminate (no livelock
  // on the empty-cluster path): nothing left for a third round even if
  // top_n were larger.
  const auto exhausted = deobfuscate_top_locations(
      observed, [&] {
        DeobfuscationConfig wide = c;
        wide.top_n = 10;
        return wide;
      }(), workspace);
  EXPECT_LE(exhausted.size(), 3u);
}

// --------------------------------------------------------------- evaluation

TEST(Evaluation, RankAlignedErrors) {
  trace::GroundTruth truth;
  truth.top_locations = {{0, 0}, {1000, 0}};
  truth.weights = {0.7, 0.2};
  const std::vector<InferredLocation> inferred{{{30, 40}, 100},
                                               {{1000, 500}, 50}};
  const UserAttackOutcome outcome = evaluate_attack(inferred, truth, 3);
  ASSERT_EQ(outcome.error_by_rank.size(), 3u);
  EXPECT_NEAR(outcome.error_by_rank[0].value(), 50.0, 1e-9);
  EXPECT_NEAR(outcome.error_by_rank[1].value(), 500.0, 1e-9);
  EXPECT_FALSE(outcome.error_by_rank[2].has_value());  // no truth rank 3
}

TEST(Evaluation, SuccessRatesAcrossThresholds) {
  SuccessRateAccumulator acc(2, {200.0, 500.0});
  UserAttackOutcome good;
  good.error_by_rank = {50.0, 450.0};
  UserAttackOutcome bad;
  bad.error_by_rank = {900.0, std::nullopt};
  acc.add(good);
  acc.add(bad);

  EXPECT_EQ(acc.users(), 2u);
  EXPECT_DOUBLE_EQ(acc.rate(0, 0), 0.5);  // top-1 within 200m: 1 of 2
  EXPECT_DOUBLE_EQ(acc.rate(0, 1), 0.5);  // top-1 within 500m
  EXPECT_DOUBLE_EQ(acc.rate(1, 0), 0.0);  // top-2 within 200m
  EXPECT_DOUBLE_EQ(acc.rate(1, 1), 0.5);  // top-2 within 500m
}

TEST(Evaluation, MissingRanksCountAsFailures) {
  SuccessRateAccumulator acc(1, {200.0});
  UserAttackOutcome missing;
  missing.error_by_rank = {std::nullopt};
  acc.add(missing);
  EXPECT_DOUBLE_EQ(acc.rate(0, 0), 0.0);
}

TEST(Evaluation, DomainErrors) {
  SuccessRateAccumulator acc(1, {200.0});
  EXPECT_THROW(acc.rate(0, 0), util::InvalidArgument);  // no users yet
  EXPECT_THROW(SuccessRateAccumulator(0, {200.0}), util::InvalidArgument);
  EXPECT_THROW(SuccessRateAccumulator(1, {}), util::InvalidArgument);
  EXPECT_THROW(SuccessRateAccumulator(1, {-5.0}), util::InvalidArgument);
  UserAttackOutcome short_outcome;  // fewer ranks than accumulator
  EXPECT_THROW(acc.add(short_outcome), util::InvalidArgument);
}

}  // namespace
}  // namespace privlocad::attack
