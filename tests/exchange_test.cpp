// Tests for the RTB exchange: DSP bidding, second-price auctions, and the
// every-DSP-sees-every-request observation property the attack relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "adnet/exchange.hpp"
#include "attack/deobfuscation.hpp"
#include "lppm/planar_laplace.hpp"
#include "rng/engine.hpp"
#include "util/validation.hpp"

namespace privlocad::adnet {
namespace {

Advertiser campaign(std::uint64_t id, geo::Point where, double radius,
                    double bid) {
  Advertiser a;
  a.id = id;
  a.business_location = where;
  a.targeting_radius_m = radius;
  a.category = "test";
  a.bid_cpm = bid;
  return a;
}

AdRequest request_at(geo::Point where, std::int64_t time = 0) {
  return {1, where, time, {}};
}

TEST(Dsp, BidsItsBestMatchingCampaign) {
  Dsp dsp("dsp-a", {campaign(1, {0, 0}, 5000.0, 2.0),
                    campaign(2, {0, 0}, 5000.0, 7.0),
                    campaign(3, {40000, 0}, 100.0, 9.0)});
  const auto bid = dsp.bid(request_at({100, 100}));
  ASSERT_TRUE(bid.has_value());
  EXPECT_EQ(bid->advertiser_id, 2u);  // highest covering bid; 3 is far
}

TEST(Dsp, NoMatchMeansNoBidButStillLogs) {
  Dsp dsp("dsp-a", {campaign(1, {40000, 0}, 100.0, 2.0)});
  EXPECT_FALSE(dsp.bid(request_at({0, 0})).has_value());
  EXPECT_EQ(dsp.bid_log().total_requests(), 1u);  // observed anyway
}

TEST(Exchange, SecondPriceAuction) {
  Exchange exchange(0.1);
  exchange.add_dsp(std::make_unique<Dsp>(
      "a", std::vector<Advertiser>{campaign(1, {0, 0}, 5000.0, 5.0)}));
  exchange.add_dsp(std::make_unique<Dsp>(
      "b", std::vector<Advertiser>{campaign(2, {0, 0}, 5000.0, 3.0)}));
  exchange.add_dsp(std::make_unique<Dsp>(
      "c", std::vector<Advertiser>{campaign(3, {40000, 0}, 100.0, 9.0)}));

  const AuctionResult result = exchange.run_auction(request_at({0, 0}));
  ASSERT_TRUE(result.filled);
  EXPECT_EQ(result.winner.advertiser_id, 1u);   // 5.0 beats 3.0
  EXPECT_DOUBLE_EQ(result.clearing_price, 3.0);  // pays the second price
  EXPECT_EQ(result.bids, 2u);                    // DSP c had no coverage
  EXPECT_DOUBLE_EQ(exchange.total_revenue_cpm(), 3.0);
}

TEST(Exchange, SingleBidderPaysReserve) {
  Exchange exchange(0.25);
  exchange.add_dsp(std::make_unique<Dsp>(
      "a", std::vector<Advertiser>{campaign(1, {0, 0}, 5000.0, 5.0)}));
  const AuctionResult result = exchange.run_auction(request_at({0, 0}));
  ASSERT_TRUE(result.filled);
  EXPECT_DOUBLE_EQ(result.clearing_price, 0.25);
}

TEST(Exchange, BidsBelowReserveRejected) {
  Exchange exchange(2.0);
  exchange.add_dsp(std::make_unique<Dsp>(
      "a", std::vector<Advertiser>{campaign(1, {0, 0}, 5000.0, 1.0)}));
  const AuctionResult result = exchange.run_auction(request_at({0, 0}));
  EXPECT_FALSE(result.filled);
  EXPECT_EQ(exchange.filled(), 0u);
  EXPECT_EQ(exchange.auctions(), 1u);
}

TEST(Exchange, EveryDspObservesEveryRequest) {
  // The paper's attack-surface claim in executable form: losing DSPs log
  // the reported location too.
  Exchange exchange(0.1);
  exchange.add_dsp(std::make_unique<Dsp>(
      "winner", std::vector<Advertiser>{campaign(1, {0, 0}, 5000.0, 9.0)}));
  exchange.add_dsp(std::make_unique<Dsp>(
      "loser", std::vector<Advertiser>{campaign(2, {0, 0}, 5000.0, 1.0)}));
  exchange.add_dsp(std::make_unique<Dsp>(
      "no-coverage",
      std::vector<Advertiser>{campaign(3, {40000, 0}, 100.0, 5.0)}));

  for (int i = 0; i < 25; ++i) {
    exchange.run_auction(request_at({i * 10.0, 0.0}, i));
  }
  for (std::size_t d = 0; d < exchange.dsp_count(); ++d) {
    EXPECT_EQ(exchange.dsp(d).bid_log().total_requests(), 25u)
        << exchange.dsp(d).name();
  }
}

TEST(Exchange, LosingDspCanRunTheLongitudinalAttack) {
  // End-to-end through the exchange: a DSP that never wins an auction
  // still reconstructs the victim's top location from its own bid log.
  Exchange exchange(0.1);
  exchange.add_dsp(std::make_unique<Dsp>(
      "winner", std::vector<Advertiser>{campaign(1, {0, 0}, 50000.0, 9.0)}));
  exchange.add_dsp(std::make_unique<Dsp>(
      "observer",
      std::vector<Advertiser>{campaign(2, {0, 0}, 50000.0, 0.01)}));

  const lppm::PlanarLaplaceMechanism laplace({std::log(4.0), 200.0});
  rng::Engine e(7);
  const geo::Point home{1500.0, -2500.0};
  for (int i = 0; i < 400; ++i) {
    exchange.run_auction(
        {7, laplace.obfuscate_one(e, home), i, {}});
  }

  const Dsp& observer = exchange.dsp(1);
  attack::DeobfuscationConfig config;
  config.trim_radius_m = laplace.tail_radius(0.05);
  config.connectivity_threshold_m = config.trim_radius_m / 4.0;
  const auto inferred = attack::deobfuscate_top_locations(
      observer.bid_log().positions_for(7), config);
  ASSERT_FALSE(inferred.empty());
  EXPECT_LT(geo::distance(inferred[0].location, home), 100.0);
}

TEST(Exchange, DomainErrors) {
  Exchange exchange(0.1);
  EXPECT_THROW(exchange.run_auction(request_at({0, 0})),
               util::InvalidArgument);  // no DSPs
  EXPECT_THROW(exchange.add_dsp(nullptr), util::InvalidArgument);
  EXPECT_THROW(Exchange(-1.0), util::InvalidArgument);
  EXPECT_THROW(Dsp("", {}), util::InvalidArgument);
  EXPECT_THROW(exchange.dsp(0), util::InvalidArgument);
}

}  // namespace
}  // namespace privlocad::adnet
