// Tests for the risk-assessment module.
#include <gtest/gtest.h>

#include "core/risk.hpp"
#include "util/validation.hpp"

namespace privlocad::core {
namespace {

attack::LocationProfile concentrated_profile() {
  // ~0.35 nats: one dominant location.
  std::vector<attack::ProfileEntry> entries{{{0, 0}, 900}, {{5000, 0}, 50},
                                            {{9000, 0}, 50}};
  return attack::LocationProfile(std::move(entries));
}

attack::LocationProfile diffuse_profile() {
  // 16 equally-visited places: entropy ln 16 ~ 2.77 nats.
  std::vector<attack::ProfileEntry> entries;
  for (int i = 0; i < 16; ++i) {
    entries.push_back({{i * 3000.0, 0.0}, 10});
  }
  return attack::LocationProfile(std::move(entries));
}

TEST(Risk, NewUserIsLowRisk) {
  const RiskAssessment r = assess_risk({}, 0, {});
  EXPECT_EQ(r.level, RiskLevel::kLow);
  EXPECT_DOUBLE_EQ(r.score, 0.0);
  EXPECT_FALSE(r.recommendation.empty());
}

TEST(Risk, ConcentratedHeavyUserIsHighRisk) {
  const RiskAssessment r = assess_risk(concentrated_profile(), 2000, {});
  EXPECT_EQ(r.level, RiskLevel::kHigh);
  EXPECT_GT(r.entropy_signal, 0.9);
  EXPECT_DOUBLE_EQ(r.exposure_signal, 1.0);
}

TEST(Risk, DiffuseUserScoresLowerThanConcentrated) {
  const RiskAssessment diffuse = assess_risk(diffuse_profile(), 2000, {});
  const RiskAssessment focused =
      assess_risk(concentrated_profile(), 2000, {});
  EXPECT_LT(diffuse.score, focused.score);
}

TEST(Risk, ExposureGrowsWithCheckIns) {
  const RiskAssessment few = assess_risk(concentrated_profile(), 20, {});
  const RiskAssessment many = assess_risk(concentrated_profile(), 900, {});
  EXPECT_LT(few.exposure_signal, many.exposure_signal);
  EXPECT_LT(few.score, many.score);
}

TEST(Risk, ConcentrationAloneIsNotEnough) {
  // A concentrated profile with almost no observations: the attacker has
  // nothing to average, so the risk stays low.
  const RiskAssessment r = assess_risk(concentrated_profile(), 5, {});
  EXPECT_EQ(r.level, RiskLevel::kLow);
}

TEST(Risk, BurnedBudgetRaisesRisk) {
  lppm::PrivacySpend spent;
  spent.basic_epsilon = 50.0;  // far past saturation
  spent.releases = 100;
  const RiskAssessment clean = assess_risk(diffuse_profile(), 100, {});
  const RiskAssessment burned = assess_risk(diffuse_profile(), 100, spent);
  EXPECT_GT(burned.score, clean.score);
  EXPECT_DOUBLE_EQ(burned.budget_signal, 1.0);
}

TEST(Risk, SignalsAreClamped) {
  lppm::PrivacySpend spent;
  spent.basic_epsilon = 1e9;
  const RiskAssessment r =
      assess_risk(concentrated_profile(), 1000000, spent);
  EXPECT_LE(r.score, 1.0);
  EXPECT_LE(r.entropy_signal, 1.0);
  EXPECT_LE(r.exposure_signal, 1.0);
  EXPECT_LE(r.budget_signal, 1.0);
}

TEST(Risk, RecommendedParamsFollowTheLevel) {
  lppm::BoundedGeoIndParams current;
  current.radius_m = 500.0;
  current.epsilon = 1.0;
  current.delta = 0.01;
  current.n = 10;

  RiskAssessment low;
  low.level = RiskLevel::kLow;
  const auto kept = recommended_params(low, current);
  EXPECT_DOUBLE_EQ(kept.epsilon, 1.0);
  EXPECT_EQ(kept.n, 10u);

  RiskAssessment medium;
  medium.level = RiskLevel::kMedium;
  const auto tightened = recommended_params(medium, current);
  EXPECT_DOUBLE_EQ(tightened.epsilon, 0.5);
  EXPECT_EQ(tightened.n, 10u);

  RiskAssessment high;
  high.level = RiskLevel::kHigh;
  const auto strict = recommended_params(high, current);
  EXPECT_DOUBLE_EQ(strict.epsilon, 0.5);
  EXPECT_EQ(strict.n, 20u);
  // Stricter params always mean more noise per candidate.
  EXPECT_GT(lppm::n_fold_sigma(strict), lppm::n_fold_sigma(current));
}

TEST(Risk, RecommendedParamsValidateInput) {
  lppm::BoundedGeoIndParams bad;
  bad.epsilon = -1.0;
  EXPECT_THROW(recommended_params({}, bad), util::InvalidArgument);
}

TEST(Risk, LevelNamesAndThresholds) {
  EXPECT_EQ(to_string(RiskLevel::kLow), "low");
  EXPECT_EQ(to_string(RiskLevel::kMedium), "medium");
  EXPECT_EQ(to_string(RiskLevel::kHigh), "high");

  RiskConfig bad;
  bad.medium_threshold = 0.9;
  bad.high_threshold = 0.5;
  EXPECT_THROW(assess_risk({}, 0, {}, bad), util::InvalidArgument);
}

}  // namespace
}  // namespace privlocad::core
