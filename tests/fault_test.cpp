// Fault-tolerance suite: the Status/Result taxonomy, deterministic fault
// injection, retry/backoff semantics, and -- the point of it all -- the
// fail-private invariant: whatever faults fire, a raw location never
// crosses the edge boundary and no request escalates to an uncaught
// exception.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <vector>

#include "adnet/exchange.hpp"
#include "core/concurrent_edge.hpp"
#include "core/profile_store.hpp"
#include "core/system.hpp"
#include "core/table_store.hpp"
#include "fault/fault.hpp"
#include "fault/retry.hpp"
#include "trace/synthetic.hpp"
#include "util/status.hpp"
#include "util/validation.hpp"

namespace privlocad {
namespace {

core::EdgeConfig fast_config() {
  core::EdgeConfig c;
  c.top_params.radius_m = 500.0;
  c.top_params.epsilon = 1.0;
  c.top_params.delta = 0.01;
  c.top_params.n = 10;
  c.management.window_seconds = 1000;
  // Tests must not sleep: retry instantly.
  c.retry.initial_backoff_us = 0.0;
  c.retry.max_backoff_us = 0.0;
  c.retry.jitter = 0.0;
  return c;
}

fault::FaultPlan serve_plan(double probability, std::uint64_t seed = 7) {
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.site(fault::Site::kServe).probability = probability;
  return plan;
}

/// A device with user 1 anchored at `home` (50 historical check-ins).
void anchor_home(core::EdgeDevice& device, geo::Point home) {
  trace::UserTrace history;
  history.user_id = 1;
  for (int i = 0; i < 50; ++i) history.check_ins.push_back({home, i});
  device.import_history(1, history);
}

// ----------------------------------------------------------- Status/Result

TEST(Status, DefaultIsOkErrorsCarryCodeAndMessage) {
  const util::Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), util::ErrorCode::kOk);
  EXPECT_EQ(ok.to_string(), "OK");

  const util::Status down = util::Status::unavailable("store down");
  EXPECT_FALSE(down.ok());
  EXPECT_TRUE(down.transient());
  EXPECT_EQ(down.code(), util::ErrorCode::kUnavailable);
  EXPECT_EQ(down.to_string(), "UNAVAILABLE: store down");

  const util::Status bad = util::Status::parse_error("ragged row");
  EXPECT_FALSE(bad.transient());
}

TEST(Status, TransientSetIsExactlyTheRetryableCodes) {
  using util::ErrorCode;
  EXPECT_TRUE(util::is_transient(ErrorCode::kUnavailable));
  EXPECT_TRUE(util::is_transient(ErrorCode::kTimeout));
  EXPECT_TRUE(util::is_transient(ErrorCode::kResourceExhausted));
  EXPECT_FALSE(util::is_transient(ErrorCode::kOk));
  EXPECT_FALSE(util::is_transient(ErrorCode::kInvalidArgument));
  EXPECT_FALSE(util::is_transient(ErrorCode::kParseError));
  EXPECT_FALSE(util::is_transient(ErrorCode::kIoError));
  EXPECT_FALSE(util::is_transient(ErrorCode::kInternal));
}

TEST(Status, ConstructingAnOkErrorStatusThrows) {
  EXPECT_THROW(util::Status(util::ErrorCode::kOk, "not an error"),
               util::InvalidArgument);
}

TEST(Result, HoldsValueOrStatus) {
  const util::Result<int> good(42);
  EXPECT_TRUE(good.ok());
  EXPECT_TRUE(good.status().ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(*good, 42);
  EXPECT_EQ(good.value_or(7), 42);

  const util::Result<int> bad(util::Status::timeout("deadline"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), util::ErrorCode::kTimeout);
  EXPECT_EQ(bad.value_or(7), 7);
  EXPECT_THROW(bad.value(), util::StatusError);
  EXPECT_THROW(util::Result<int>(util::Status()), util::InvalidArgument);
}

TEST(Status, FromExceptionMapsTheTaxonomy) {
  using util::ErrorCode;
  EXPECT_EQ(util::status_from_exception(util::ParseError("bad", 3)).code(),
            ErrorCode::kParseError);
  EXPECT_EQ(util::status_from_exception(util::IoError("gone")).code(),
            ErrorCode::kIoError);
  EXPECT_EQ(util::status_from_exception(util::InvalidArgument("neg")).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(util::status_from_exception(std::runtime_error("boom")).code(),
            ErrorCode::kInternal);
  EXPECT_EQ(util::status_from_exception(
                util::StatusError(util::Status::unavailable("x")))
                .code(),
            ErrorCode::kUnavailable);
}

TEST(Status, ParseErrorIsAnInvalidArgumentWithALine) {
  const util::ParseError error("ragged row", 12);
  EXPECT_EQ(error.line(), 12u);
  EXPECT_EQ(error.code(), util::ErrorCode::kParseError);
  const util::InvalidArgument* as_invalid = &error;  // compile-time is-a
  EXPECT_NE(as_invalid, nullptr);
}

// -------------------------------------------------------------- FaultPlan

TEST(FaultPlan, ParsesTheDocumentedGrammar) {
  const util::Result<fault::FaultPlan> parsed = fault::FaultPlan::parse(
      "seed=42;serve:p=0.3;exchange:p=0.25,latency_us=50,code=timeout");
  ASSERT_TRUE(parsed.ok());
  const fault::FaultPlan& plan = *parsed;
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_TRUE(plan.any());
  EXPECT_DOUBLE_EQ(plan.site(fault::Site::kServe).probability, 0.3);
  EXPECT_DOUBLE_EQ(plan.site(fault::Site::kExchange).probability, 0.25);
  EXPECT_DOUBLE_EQ(plan.site(fault::Site::kExchange).latency_us, 50.0);
  EXPECT_EQ(plan.site(fault::Site::kExchange).code,
            util::ErrorCode::kTimeout);
  EXPECT_EQ(plan.site(fault::Site::kTableStore).probability, 0.0);
  EXPECT_FALSE(plan.summary().empty());
}

TEST(FaultPlan, MalformedSpecsAreParseErrors) {
  for (const char* spec :
       {"serve", "unknown_site:p=0.1", "serve:p", "serve:p=2.0",
        "serve:p=nope", "serve:latency_us=-1", "serve:code=weird",
        "serve:frequency=0.5", "seed=abc"}) {
    const util::Result<fault::FaultPlan> parsed =
        fault::FaultPlan::parse(spec);
    ASSERT_FALSE(parsed.ok()) << spec;
    EXPECT_EQ(parsed.status().code(), util::ErrorCode::kParseError) << spec;
  }
}

TEST(FaultPlan, FromEnvFailsLoudlyOnTypos) {
  ::setenv("PRIVLOCAD_FAULTS", "serve:p=0.5", 1);
  EXPECT_DOUBLE_EQ(
      fault::FaultPlan::from_env().site(fault::Site::kServe).probability,
      0.5);
  ::setenv("PRIVLOCAD_FAULTS", "serve:p=banana", 1);
  EXPECT_THROW(fault::FaultPlan::from_env(), util::StatusError);
  ::unsetenv("PRIVLOCAD_FAULTS");
  EXPECT_FALSE(fault::FaultPlan::from_env().any());
}

// ----------------------------------------------------------- FaultInjector

TEST(FaultInjector, DisabledInjectorAlwaysPasses) {
  fault::FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(injector.check(fault::Site::kServe).ok());
  }
  EXPECT_EQ(injector.injected_total(), 0u);
}

TEST(FaultInjector, SameSeedSameSchedule) {
  fault::FaultInjector a(serve_plan(0.3, 99));
  fault::FaultInjector b(serve_plan(0.3, 99));
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.check(fault::Site::kServe).ok(),
              b.check(fault::Site::kServe).ok())
        << "arrival " << i;
  }
  EXPECT_EQ(a.injected(fault::Site::kServe), b.injected(fault::Site::kServe));
  EXPECT_EQ(a.checks(fault::Site::kServe), 500u);
  // The empirical rate should be in the right ballpark for p=0.3.
  EXPECT_GT(a.injected(fault::Site::kServe), 100u);
  EXPECT_LT(a.injected(fault::Site::kServe), 200u);
}

TEST(FaultInjector, SitesScheduleIndependently) {
  fault::FaultPlan plan = serve_plan(1.0);
  plan.site(fault::Site::kExchange).probability = 0.0;
  fault::FaultInjector injector(plan);
  EXPECT_FALSE(injector.check(fault::Site::kServe).ok());
  EXPECT_TRUE(injector.check(fault::Site::kExchange).ok());
  EXPECT_EQ(injector.injected_total(), 1u);
}

TEST(FaultInjector, FiredChecksCarryTheConfiguredCode) {
  fault::FaultPlan plan = serve_plan(1.0);
  plan.site(fault::Site::kServe).code = util::ErrorCode::kTimeout;
  fault::FaultInjector injector(plan);
  const util::Status status = injector.check(fault::Site::kServe);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::ErrorCode::kTimeout);
  EXPECT_TRUE(status.transient());
}

// ---------------------------------------------------------- retry/backoff

TEST(Retry, BackoffGrowsGeometricallyAndCaps) {
  fault::RetryPolicy policy;
  policy.initial_backoff_us = 50.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_us = 5000.0;
  policy.jitter = 0.0;
  rng::Engine engine(1);
  EXPECT_DOUBLE_EQ(fault::backoff_delay_us(policy, 0, engine), 50.0);
  EXPECT_DOUBLE_EQ(fault::backoff_delay_us(policy, 1, engine), 100.0);
  EXPECT_DOUBLE_EQ(fault::backoff_delay_us(policy, 6, engine), 3200.0);
  EXPECT_DOUBLE_EQ(fault::backoff_delay_us(policy, 7, engine), 5000.0);
  EXPECT_DOUBLE_EQ(fault::backoff_delay_us(policy, 20, engine), 5000.0);
}

// Regression: the capped-exponential delay must stay exact at the cap for
// ANY retry index -- astronomical counts (a "retry forever" policy passes
// SIZE_MAX) must neither overflow past the cap nor degenerate into an
// O(retry) loop. Each case below completes instantly post-fix; the
// multiplier == 1 case in particular used to spin `retry` iterations.
TEST(Retry, BackoffCapsAtAstronomicalRetryCounts) {
  fault::RetryPolicy policy;
  policy.initial_backoff_us = 50.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_us = 5000.0;
  policy.jitter = 0.0;
  rng::Engine engine(1);
  EXPECT_DOUBLE_EQ(fault::backoff_delay_us(policy, 63, engine), 5000.0);
  EXPECT_DOUBLE_EQ(fault::backoff_delay_us(policy, 4096, engine), 5000.0);
  EXPECT_DOUBLE_EQ(
      fault::backoff_delay_us(
          policy, std::numeric_limits<std::size_t>::max(), engine),
      5000.0);

  // A non-growing multiplier keeps the initial delay at any retry index
  // (and must not iterate its way there).
  policy.backoff_multiplier = 1.0;
  EXPECT_DOUBLE_EQ(
      fault::backoff_delay_us(
          policy, std::numeric_limits<std::size_t>::max(), engine),
      50.0);

  // Zero initial backoff stays zero -- and must not form 0 * inf = NaN
  // through the closed-form growth factor.
  policy.backoff_multiplier = 2.0;
  policy.initial_backoff_us = 0.0;
  const double zero_delay = fault::backoff_delay_us(
      policy, std::numeric_limits<std::size_t>::max(), engine);
  EXPECT_DOUBLE_EQ(zero_delay, 0.0);
}

TEST(Retry, JitterStaysInsideTheDocumentedBand) {
  fault::RetryPolicy policy;
  policy.initial_backoff_us = 100.0;
  policy.jitter = 0.5;
  rng::Engine engine(3);
  for (int i = 0; i < 200; ++i) {
    const double d = fault::backoff_delay_us(policy, 0, engine);
    EXPECT_GE(d, 50.0);
    EXPECT_LE(d, 150.0);
  }
}

TEST(Retry, PolicyValidation) {
  fault::RetryPolicy policy;
  policy.max_attempts = 0;
  EXPECT_THROW(policy.validate(), util::InvalidArgument);
  policy = {};
  policy.jitter = 1.5;
  EXPECT_THROW(policy.validate(), util::InvalidArgument);
  policy = {};
  policy.backoff_multiplier = 0.5;
  EXPECT_THROW(policy.validate(), util::InvalidArgument);
  policy = {};
  EXPECT_NO_THROW(policy.validate());
}

TEST(Retry, RetriesTransientUntilSuccess) {
  fault::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_us = 0.0;
  policy.max_backoff_us = 0.0;
  policy.jitter = 0.0;
  rng::Engine engine(1);
  int calls = 0;
  std::size_t retries = 0;
  const util::Status status = fault::retry_with_backoff(
      policy, engine,
      [&calls]() -> util::Status {
        return ++calls < 3 ? util::Status::unavailable("hiccup")
                           : util::Status();
      },
      &retries);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
}

TEST(Retry, NonTransientFailsFast) {
  fault::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_us = 0.0;
  policy.jitter = 0.0;
  rng::Engine engine(1);
  int calls = 0;
  const util::Status status = fault::retry_with_backoff(
      policy, engine, [&calls]() -> util::Status {
        ++calls;
        return util::Status::parse_error("corrupt");
      });
  EXPECT_EQ(status.code(), util::ErrorCode::kParseError);
  EXPECT_EQ(calls, 1);
}

TEST(Retry, ExhaustionReturnsTheLastTransientStatus) {
  fault::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_us = 0.0;
  policy.max_backoff_us = 0.0;
  policy.jitter = 0.0;
  rng::Engine engine(1);
  int calls = 0;
  std::size_t retries = 0;
  const util::Status status = fault::retry_with_backoff(
      policy, engine,
      [&calls]() -> util::Status {
        ++calls;
        return util::Status::timeout("still down");
      },
      &retries);
  EXPECT_EQ(status.code(), util::ErrorCode::kTimeout);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
}

// ----------------------------------------------- degraded serving (edge)

TEST(FaultServing, CertainFaultWithNoCacheDropsTheRequest) {
  fault::FaultInjector injector(serve_plan(1.0));
  core::EdgeConfig config = fast_config().with_seed(42);
  config.faults = &injector;
  core::EdgeDevice device(config);

  const core::ServeResult result = device.serve(1, {0, 0}, 100);
  EXPECT_EQ(result.outcome, core::ServeOutcome::kDegradedDropped);
  EXPECT_FALSE(result.released());
  EXPECT_TRUE(result.degraded());
  EXPECT_TRUE(result.status.transient());
  EXPECT_EQ(device.telemetry().degraded_dropped, 1u);
  EXPECT_EQ(device.telemetry().requests, 1u);
  // The legacy throwing wrapper surfaces the same outcome as StatusError.
  EXPECT_THROW(device.report_location(1, {0, 0}, 101), util::StatusError);
}

TEST(FaultServing, CertainFaultReplaysTheFrozenCandidateSet) {
  fault::FaultInjector injector(serve_plan(1.0));
  core::EdgeConfig config = fast_config().with_seed(42);
  config.faults = &injector;
  core::EdgeDevice device(config);

  const geo::Point home{0, 0};
  anchor_home(device, home);
  // Freeze the permanent candidate set while the fault seam is not
  // consulted (prepare_obfuscation is the registration-time path).
  device.prepare_obfuscation(1);
  const double spent_before = device.accountant().spend_for(1).basic_epsilon;

  const core::ServeResult result = device.serve(1, home, 2000);
  EXPECT_EQ(result.outcome, core::ServeOutcome::kDegradedCached);
  EXPECT_TRUE(result.released());
  EXPECT_EQ(result.reported.kind, core::ReportKind::kTopLocation);
  // Fail private: the replayed candidate is an obfuscated point, not the
  // raw top location.
  EXPECT_GT(geo::distance(result.reported.location, home), 0.0);
  // Replay is post-processing: no new privacy charge.
  EXPECT_DOUBLE_EQ(device.accountant().spend_for(1).basic_epsilon,
                   spent_before);
  EXPECT_EQ(device.telemetry().degraded_cached, 1u);
}

TEST(FaultServing, TransientFaultsAreRetriedToSuccess) {
  // p=0.5 with 4 attempts: nearly every request recovers via retry.
  fault::FaultInjector injector(serve_plan(0.5, 11));
  core::EdgeConfig config = fast_config().with_seed(42);
  config.faults = &injector;
  config.retry.max_attempts = 16;
  core::EdgeDevice device(config);

  std::size_t released = 0;
  for (int i = 0; i < 200; ++i) {
    const core::ServeResult result =
        device.serve(1, {i * 700.0, 0.0}, 100 + i);
    if (result.released()) ++released;
  }
  const core::EdgeTelemetry t = device.telemetry();
  EXPECT_EQ(released, 200u) << "16 attempts at p=0.5 should always recover";
  EXPECT_GT(t.served_after_retry, 50u);
  EXPECT_GE(t.serve_retries, t.served_after_retry);
  EXPECT_EQ(t.requests, 200u);
}

TEST(FaultServing, OutcomesAreDeterministicForAFixedSeed) {
  auto run = [] {
    fault::FaultInjector injector(serve_plan(0.4, 21));
    core::EdgeConfig config = fast_config().with_seed(42);
    config.faults = &injector;
    config.retry.max_attempts = 2;
    core::EdgeDevice device(config);
    anchor_home(device, {0, 0});
    device.prepare_obfuscation(1);
    std::vector<std::pair<core::ServeOutcome, geo::Point>> outcomes;
    for (int i = 0; i < 100; ++i) {
      const core::ServeResult r = device.serve(1, {0, 0}, 2000 + i);
      outcomes.emplace_back(r.outcome, r.released() ? r.reported.location
                                                    : geo::Point{0, 0});
    }
    return outcomes;
  };
  const auto first = run();
  const auto second = run();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].first, second[i].first) << i;
    EXPECT_EQ(first[i].second.x, second[i].second.x) << i;
    EXPECT_EQ(first[i].second.y, second[i].second.y) << i;
  }
}

TEST(FaultServing, FailPrivateUnderHeavyMixedFaults) {
  // 30%+ fault rate on the serve seam: every outcome must be typed, and
  // any released location must differ from the raw input.
  fault::FaultInjector injector(serve_plan(0.35, 5));
  core::EdgeConfig config = fast_config().with_seed(9);
  config.faults = &injector;
  config.retry.max_attempts = 2;
  core::EdgeDevice device(config);
  const geo::Point home{0, 0};
  anchor_home(device, home);
  device.prepare_obfuscation(1);

  std::size_t drops = 0;
  for (int i = 0; i < 300; ++i) {
    // Alternate the anchored top location and fresh nomadic spots.
    const geo::Point raw =
        i % 2 == 0 ? home : geo::Point{3000.0 + i * 600.0, -900.0 * i};
    const core::ServeResult r = device.serve(1, raw, 2000 + i);
    switch (r.outcome) {
      case core::ServeOutcome::kServed:
      case core::ServeOutcome::kServedAfterRetry:
      case core::ServeOutcome::kDegradedCached:
        ASSERT_TRUE(r.released());
        EXPECT_GT(geo::distance(r.reported.location, raw), 0.0)
            << "raw location leaked at request " << i;
        break;
      case core::ServeOutcome::kDegradedDropped:
        ++drops;
        EXPECT_FALSE(r.released());
        break;
      case core::ServeOutcome::kFailed:
        FAIL() << "injected transient faults must degrade, not fail: "
               << r.status.to_string();
    }
  }
  EXPECT_GT(injector.injected_total(), 0u);
  // Nomadic requests that hit exhausted retries have no cache: some drops
  // must have occurred at this fault rate.
  EXPECT_GT(drops, 0u);
}

// -------------------------------------------------- ConcurrentEdge batch

TEST(FaultServing, ConcurrentBatchCompletesUnderFaults) {
  fault::FaultInjector injector(serve_plan(0.3, 13));
  core::EdgeConfig config = fast_config().with_shards(4).with_seed(3);
  config.faults = &injector;
  config.retry.max_attempts = 2;
  core::ConcurrentEdge edge(config);

  trace::SyntheticConfig synth;
  synth.min_check_ins = 30;
  synth.max_check_ins = 60;
  const rng::Engine parent(17);
  const auto users = trace::generate_population(parent, synth, 12);
  std::vector<trace::UserTrace> traces;
  for (const trace::SyntheticUser& user : users) traces.push_back(user.trace);

  const core::BatchServeStats stats = edge.serve_trace_batch(traces);
  EXPECT_EQ(stats.users, 12u);
  EXPECT_GT(stats.requests, 0u);
  // Conservation: every request ends in exactly one outcome bucket.
  EXPECT_EQ(stats.requests, stats.served + stats.degraded_cached +
                                stats.degraded_dropped + stats.failed);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(stats.degraded_dropped + stats.served_after_retry, 0u);
  EXPECT_EQ(edge.telemetry().requests, stats.requests);
}

// ------------------------------------------------------- stores + faults

TEST(FaultStores, MissingFileIsANonRetryableIoError) {
  const util::Result<core::TableSnapshot> result =
      core::try_load_tables_file("/nonexistent/tables.csv", 100.0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::ErrorCode::kIoError);

  const util::Result<core::ProfileSnapshot> profiles =
      core::try_load_profiles_file("/nonexistent/profiles.csv");
  ASSERT_FALSE(profiles.ok());
  EXPECT_EQ(profiles.status().code(), util::ErrorCode::kIoError);
}

TEST(FaultStores, CorruptFileIsAParseErrorNotARetry) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "privlocad_corrupt_tables.csv";
  {
    std::ofstream out(path);
    out << "user_id,entry_index,top_x,top_y,cand_index,cand_x,cand_y\n";
    out << "1,0,0.0\n";  // ragged row
  }
  const util::Result<core::TableSnapshot> result =
      core::try_load_tables_file(path.string(), 100.0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::ErrorCode::kParseError);
  std::filesystem::remove(path);
}

TEST(FaultStores, RoundTripSucceedsAndInjectedFaultsSurface) {
  core::EdgeDevice device(fast_config().with_seed(42));
  anchor_home(device, {0, 0});
  device.prepare_obfuscation(1);

  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "privlocad_fault_tables.csv";
  fault::RetryPolicy policy;
  policy.initial_backoff_us = 0.0;
  policy.max_backoff_us = 0.0;
  policy.jitter = 0.0;

  ASSERT_TRUE(
      core::try_save_tables_file(path.string(), device.snapshot_tables(),
                                 policy)
          .ok());
  const util::Result<core::TableSnapshot> loaded =
      core::try_load_tables_file(path.string(), 100.0, policy);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1u);

  // A certain table-store fault exhausts retries with the injected code.
  fault::FaultPlan plan;
  plan.site(fault::Site::kTableStore).probability = 1.0;
  fault::FaultInjector injector(plan);
  const util::Result<core::TableSnapshot> blocked =
      core::try_load_tables_file(path.string(), 100.0, policy, &injector);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), util::ErrorCode::kUnavailable);
  EXPECT_EQ(injector.injected(fault::Site::kTableStore),
            policy.max_attempts);
  std::filesystem::remove(path);
}

TEST(FaultStores, ProfileStoreHonoursItsOwnFaultSite) {
  core::EdgeDevice device(fast_config().with_seed(42));
  anchor_home(device, {0, 0});
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      "privlocad_fault_profiles.csv";
  fault::RetryPolicy policy;
  policy.initial_backoff_us = 0.0;
  policy.max_backoff_us = 0.0;
  policy.jitter = 0.0;

  fault::FaultPlan plan;
  plan.site(fault::Site::kProfileStore).probability = 1.0;
  plan.site(fault::Site::kProfileStore).code =
      util::ErrorCode::kResourceExhausted;
  fault::FaultInjector injector(plan);

  const util::Status blocked = core::try_save_profiles_file(
      path.string(), device.snapshot_profiles(), policy, &injector);
  EXPECT_EQ(blocked.code(), util::ErrorCode::kResourceExhausted);

  ASSERT_TRUE(core::try_save_profiles_file(path.string(),
                                           device.snapshot_profiles(), policy)
                  .ok());
  EXPECT_TRUE(core::try_load_profiles_file(path.string(), policy).ok());
  std::filesystem::remove(path);
}

// ------------------------------------------------------ exchange + system

TEST(FaultExchange, TryRunAuctionDegradesTyped) {
  adnet::Exchange exchange;
  exchange.add_dsp(std::make_unique<adnet::Dsp>("dsp-a",
                                                std::vector<adnet::Advertiser>{}));
  const adnet::AdRequest request{1, {0, 0}, 100, {}};

  const util::Result<adnet::AuctionResult> ok_result =
      exchange.try_run_auction(request);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_FALSE(ok_result->filled);

  fault::FaultPlan plan;
  plan.site(fault::Site::kExchange).probability = 1.0;
  fault::FaultInjector injector(plan);
  fault::RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff_us = 0.0;
  policy.max_backoff_us = 0.0;
  policy.jitter = 0.0;
  const util::Result<adnet::AuctionResult> blocked =
      exchange.try_run_auction(request, policy, &injector);
  ASSERT_FALSE(blocked.ok());
  EXPECT_TRUE(blocked.status().transient());
  EXPECT_EQ(injector.injected(fault::Site::kExchange), 2u);
}

TEST(FaultSystem, AdPathDegradesWhileTheLocationReportSurvives) {
  fault::FaultPlan plan;
  plan.site(fault::Site::kExchange).probability = 1.0;
  fault::FaultInjector injector(plan);
  core::EdgeConfig config = fast_config().with_seed(4);
  config.faults = &injector;
  config.retry.max_attempts = 2;
  core::EdgePrivLocAd system(config, {});

  const core::ServedAds served = system.on_lba_request(1, {0, 0}, 100);
  EXPECT_TRUE(served.location_released());
  EXPECT_TRUE(served.ad_path_degraded);
  EXPECT_TRUE(served.delivered.empty());
  EXPECT_FALSE(served.status.ok());
  EXPECT_EQ(system.edge().telemetry().adnet_degraded, 1u);
}

TEST(FaultSystem, ServeDropMakesNoAdRequestAtAll) {
  fault::FaultInjector injector(serve_plan(1.0));
  core::EdgeConfig config = fast_config().with_seed(4);
  config.faults = &injector;
  core::EdgePrivLocAd system(config, {});

  const core::ServedAds served = system.on_lba_request(1, {0, 0}, 100);
  EXPECT_FALSE(served.location_released());
  EXPECT_EQ(served.outcome, core::ServeOutcome::kDegradedDropped);
  EXPECT_EQ(served.matched_count, 0u);
  EXPECT_TRUE(served.delivered.empty());
  // The exchange site was never consulted: no location, no bid request.
  EXPECT_EQ(injector.checks(fault::Site::kExchange), 0u);
}

// ------------------------------------------------------------- EdgeConfig

TEST(EdgeConfig, ValidateRejectsOutOfDomainValues) {
  core::EdgeConfig config = fast_config();
  config.shards = 0;
  EXPECT_THROW(config.validate(), util::InvalidArgument);
  config = fast_config();
  config.retry.max_attempts = 0;
  EXPECT_THROW(config.validate(), util::InvalidArgument);
  config = fast_config();
  config.top_match_radius_m = -1.0;
  EXPECT_THROW(config.validate(), util::InvalidArgument);
  EXPECT_NO_THROW(fast_config().validate());
}

TEST(EdgeConfig, FluentCopiesSetOneKnob) {
  const core::EdgeConfig base = fast_config();
  EXPECT_EQ(base.with_seed(9).seed, 9u);
  EXPECT_EQ(base.with_shards(3).shards, 3u);
  EXPECT_EQ(base.with_seed(9).shards, base.shards);
}

TEST(ServeOutcome, NamesAreStable) {
  EXPECT_STREQ(core::serve_outcome_name(core::ServeOutcome::kServed),
               "served");
  EXPECT_STREQ(
      core::serve_outcome_name(core::ServeOutcome::kServedAfterRetry),
      "served_after_retry");
  EXPECT_STREQ(core::serve_outcome_name(core::ServeOutcome::kDegradedCached),
               "degraded_cached");
  EXPECT_STREQ(
      core::serve_outcome_name(core::ServeOutcome::kDegradedDropped),
      "degraded_dropped");
  EXPECT_STREQ(core::serve_outcome_name(core::ServeOutcome::kFailed),
               "failed");
}

}  // namespace
}  // namespace privlocad
