// Tests for polygons and the areas/country targeting categories.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "adnet/ad_network.hpp"
#include "geo/polygon.hpp"
#include "util/validation.hpp"

namespace privlocad {
namespace {

using geo::Point;
using geo::Polygon;

// ------------------------------------------------------------------ polygon

TEST(Polygon, RectangleContainment) {
  const Polygon rect = Polygon::rectangle({0, 0}, {10, 5});
  EXPECT_TRUE(rect.contains({5, 2}));
  EXPECT_TRUE(rect.contains({0.001, 0.001}));
  EXPECT_FALSE(rect.contains({11, 2}));
  EXPECT_FALSE(rect.contains({5, -1}));
  EXPECT_FALSE(rect.contains({-0.1, 2}));
}

TEST(Polygon, RectangleArea) {
  EXPECT_DOUBLE_EQ(Polygon::rectangle({0, 0}, {10, 5}).area(), 50.0);
  EXPECT_DOUBLE_EQ(Polygon::rectangle({-3, -2}, {3, 2}).area(), 24.0);
}

TEST(Polygon, TriangleAreaAndContainment) {
  const Polygon tri({{0, 0}, {10, 0}, {0, 10}});
  EXPECT_DOUBLE_EQ(tri.area(), 50.0);
  EXPECT_TRUE(tri.contains({2, 2}));
  EXPECT_FALSE(tri.contains({6, 6}));  // beyond the hypotenuse
}

TEST(Polygon, WindingOrderIrrelevant) {
  const Polygon ccw({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  const Polygon cw({{0, 0}, {0, 10}, {10, 10}, {10, 0}});
  EXPECT_DOUBLE_EQ(ccw.area(), cw.area());
  EXPECT_EQ(ccw.contains({5, 5}), cw.contains({5, 5}));
}

TEST(Polygon, ConcavePolygon) {
  // A "C" shape: the notch must be outside.
  const Polygon c_shape({{0, 0}, {10, 0}, {10, 3}, {3, 3}, {3, 7},
                         {10, 7}, {10, 10}, {0, 10}});
  EXPECT_TRUE(c_shape.contains({1, 5}));    // spine of the C
  EXPECT_FALSE(c_shape.contains({7, 5}));   // inside the notch
  EXPECT_TRUE(c_shape.contains({7, 1}));    // lower arm
  EXPECT_TRUE(c_shape.contains({7, 9}));    // upper arm
}

TEST(Polygon, RegularPolygonApproximatesCircle) {
  const Polygon near_circle = Polygon::regular({0, 0}, 1000.0, 128);
  EXPECT_NEAR(near_circle.area(), std::numbers::pi * 1e6, 1e6 * 0.01);
  EXPECT_TRUE(near_circle.contains({500, 500}));
  EXPECT_FALSE(near_circle.contains({800, 800}));  // outside r = 1000
}

TEST(Polygon, BoundsCoverAllVertices) {
  const Polygon tri({{-5, 0}, {10, 0}, {0, 20}});
  EXPECT_TRUE(tri.bounds().contains({-5, 0}));
  EXPECT_TRUE(tri.bounds().contains({10, 20}));  // bounding box corner
  EXPECT_FALSE(tri.bounds().contains({11, 0}));
}

TEST(Polygon, DomainErrors) {
  EXPECT_THROW(Polygon({{0, 0}, {1, 1}}), util::InvalidArgument);
  EXPECT_THROW(Polygon::rectangle({5, 5}, {0, 0}), util::InvalidArgument);
  EXPECT_THROW(Polygon::regular({0, 0}, -1.0, 8), util::InvalidArgument);
  EXPECT_THROW(Polygon::regular({0, 0}, 1.0, 2), util::InvalidArgument);
}

// -------------------------------------------------------- targeting types

adnet::Advertiser radius_campaign(std::uint64_t id, Point where,
                                  double radius) {
  adnet::Advertiser a;
  a.id = id;
  a.business_location = where;
  a.targeting_radius_m = radius;
  a.category = "test";
  return a;
}

TEST(Targeting, AreaCampaignMatchesInsidePolygonOnly) {
  adnet::Advertiser district = radius_campaign(1, {0, 0}, 1.0);
  district.targeting = adnet::TargetingType::kArea;
  district.area = Polygon::rectangle({-1000, -1000}, {1000, 1000});

  adnet::AdNetwork network({district});
  EXPECT_EQ(network.match({0, 0}).size(), 1u);
  EXPECT_EQ(network.match({999, -999}).size(), 1u);
  EXPECT_EQ(network.match({1500, 0}).size(), 0u);
}

TEST(Targeting, CountryCampaignMatchesEverywhere) {
  adnet::Advertiser national = radius_campaign(1, {0, 0}, 1.0);
  national.targeting = adnet::TargetingType::kCountry;

  adnet::AdNetwork network({national});
  EXPECT_EQ(network.match({0, 0}).size(), 1u);
  EXPECT_EQ(network.match({40000, -40000}).size(), 1u);
}

TEST(Targeting, MixedCampaignTypesCoexist) {
  adnet::Advertiser radius = radius_campaign(1, {0, 0}, 1000.0);
  adnet::Advertiser district = radius_campaign(2, {0, 0}, 1.0);
  district.targeting = adnet::TargetingType::kArea;
  district.area = Polygon::rectangle({5000, 5000}, {7000, 7000});
  adnet::Advertiser national = radius_campaign(3, {0, 0}, 1.0);
  national.targeting = adnet::TargetingType::kCountry;

  adnet::AdNetwork network({radius, district, national});
  // Near the origin: radius + country.
  EXPECT_EQ(network.match({100, 100}).size(), 2u);
  // Inside the district: area + country.
  EXPECT_EQ(network.match({6000, 6000}).size(), 2u);
  // Far from both: country only.
  EXPECT_EQ(network.match({-30000, 0}).size(), 1u);
}

TEST(Targeting, AreaCampaignWithoutPolygonRejected) {
  adnet::Advertiser broken = radius_campaign(1, {0, 0}, 1000.0);
  broken.targeting = adnet::TargetingType::kArea;  // no polygon set
  EXPECT_THROW(adnet::AdNetwork({broken}), util::InvalidArgument);
}

}  // namespace
}  // namespace privlocad
