// Unit and property tests for the statistics substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "stats/entropy.hpp"
#include "stats/histogram.hpp"
#include "stats/monte_carlo.hpp"
#include "stats/quantiles.hpp"
#include "stats/running_stats.hpp"
#include "util/validation.hpp"

namespace privlocad::stats {
namespace {

// ----------------------------------------------------------- RunningStats

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyAccessorsThrow) {
  const RunningStats s;
  EXPECT_THROW(s.mean(), util::InvalidArgument);
  EXPECT_THROW(s.min(), util::InvalidArgument);
  EXPECT_THROW(s.max(), util::InvalidArgument);
  RunningStats one;
  one.add(1.0);
  EXPECT_THROW(one.variance(), util::InvalidArgument);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats whole, left, right;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10.0 + i * 0.1;
    whole.add(v);
    (i < 40 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(3.0);
  a.add(5.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);

  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 4.0);
}

TEST(RunningStats, NumericallyStableOnLargeOffsets) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25025, 0.001);
}

// -------------------------------------------------------------- quantiles

TEST(Quantile, EndpointsAndMedian) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
}

TEST(Quantile, LinearInterpolation) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 7.5);
}

TEST(Quantile, SingleSample) {
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.9), 7.0);
}

TEST(Quantile, DomainErrors) {
  EXPECT_THROW(quantile({}, 0.5), util::InvalidArgument);
  EXPECT_THROW(quantile({1.0}, 1.5), util::InvalidArgument);
}

TEST(LowerBoundAtConfidence, MatchesPaperSemantics) {
  // Pr(X >= v) = alpha means v is the (1 - alpha) quantile.
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const double bound = lower_bound_at_confidence(v, 0.9);
  // 90% of the samples must lie at or above the bound.
  int above = 0;
  for (const double x : v) {
    if (x >= bound) ++above;
  }
  EXPECT_GE(above, 90);
  EXPECT_THROW(lower_bound_at_confidence(v, 1.0), util::InvalidArgument);
}

TEST(EmpiricalCdf, StepFunctionValues) {
  const EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf(9.0), 1.0);
}

TEST(EmpiricalCdf, KsStatisticZeroAgainstItself) {
  std::vector<double> samples;
  for (int i = 1; i <= 1000; ++i) samples.push_back(i / 1000.0);
  const EmpiricalCdf cdf(samples);
  // Against the true U(0,1] CDF the KS statistic is at most 1/n.
  const double ks = cdf.ks_statistic([](double x) { return x; });
  EXPECT_LE(ks, 1.0 / 1000.0 + 1e-12);
}

TEST(EmpiricalCdf, EmptyRejected) {
  EXPECT_THROW(EmpiricalCdf({}), util::InvalidArgument);
}

// ---------------------------------------------------------------- entropy

TEST(Entropy, UniformTwoLocationsIsLn2) {
  EXPECT_NEAR(location_entropy({50, 50}), std::log(2.0), 1e-12);
}

TEST(Entropy, SingleLocationIsZero) {
  EXPECT_DOUBLE_EQ(location_entropy({100}), 0.0);
}

TEST(Entropy, ZeroFrequenciesIgnored) {
  EXPECT_NEAR(location_entropy({50, 50, 0, 0}), std::log(2.0), 1e-12);
}

TEST(Entropy, SkewedProfileBelowPaperThreshold) {
  // A typical "top-location dominated" profile: entropy < 2 nats, the
  // bucket the paper says 88.8% of users fall into.
  EXPECT_LT(location_entropy({800, 150, 30, 10, 5, 5}), 2.0);
}

TEST(Entropy, UniformManyLocationsAboveThreshold) {
  const std::vector<std::uint64_t> uniform(10, 100);  // ln 10 ~ 2.30
  EXPECT_GT(location_entropy(uniform), 2.0);
}

TEST(Entropy, DomainErrors) {
  EXPECT_THROW(location_entropy({}), util::InvalidArgument);
  EXPECT_THROW(location_entropy({0, 0}), util::InvalidArgument);
}

TEST(EntropyOfDistribution, MatchesFrequencyVersion) {
  EXPECT_NEAR(entropy_of_distribution({0.5, 0.5}), std::log(2.0), 1e-12);
  EXPECT_THROW(entropy_of_distribution({0.5, 0.2}), util::InvalidArgument);
  EXPECT_THROW(entropy_of_distribution({1.5, -0.5}), util::InvalidArgument);
}

// -------------------------------------------------------------- histogram

TEST(Histogram, BinningAndEdges) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);   // bin 0
  h.add(0.3);   // bin 1
  h.add(0.85);  // bin 3
  h.add(-0.5);  // underflow
  h.add(1.5);   // overflow
  EXPECT_EQ(h.count_in_bin(0), 1u);
  EXPECT_EQ(h.count_in_bin(1), 1u);
  EXPECT_EQ(h.count_in_bin(2), 0u);
  EXPECT_EQ(h.count_in_bin(3), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lower_edge(2), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_in_bin(0), 0.2);
}

TEST(Histogram, UpperEdgeGoesToOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.add(1.0);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, ToStringHasOneLinePerBin) {
  Histogram h(0.0, 1.0, 3);
  h.add(0.5);
  const std::string s = h.to_string();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);
}

TEST(Histogram, DomainErrors) {
  EXPECT_THROW(Histogram(1.0, 0.0, 4), util::InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), util::InvalidArgument);
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.count_in_bin(2), util::InvalidArgument);
  EXPECT_THROW(h.fraction_in_bin(0), util::InvalidArgument);  // empty
}

TEST(Histogram, CtorValidatesBeforeComputingWidth) {
  // Regression: the constructor used to divide by `bins` and build state
  // before validating, so bad arguments could reach arithmetic. All bad
  // combinations must throw InvalidArgument -- including ones whose
  // width computation would "work" (e.g. inf bounds give inf width).
  EXPECT_THROW(Histogram(0.0, 1.0, 0), util::InvalidArgument);
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(Histogram(-inf, 1.0, 4), util::InvalidArgument);
  EXPECT_THROW(Histogram(0.0, inf, 4), util::InvalidArgument);
  EXPECT_THROW(Histogram(nan, 1.0, 4), util::InvalidArgument);
  EXPECT_THROW(Histogram(0.0, nan, 4), util::InvalidArgument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), util::InvalidArgument);
}

TEST(Histogram, NonFiniteValuesTalliedAsInvalidNotBinned) {
  // Regression: add() used to cast (value - lo) / width to size_t, which
  // is UB for NaN and landed inf in overflow. Non-finite observations now
  // count toward total() via invalid() and touch no bin.
  Histogram h(0.0, 1.0, 2);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  h.add(0.25);
  EXPECT_EQ(h.invalid(), 3u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count_in_bin(0), 1u);
  EXPECT_EQ(h.count_in_bin(1), 0u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_DOUBLE_EQ(h.fraction_in_bin(0), 0.25);
}

// ------------------------------------------------------------ Monte Carlo

TEST(MonteCarlo, AggregatesTrialValues) {
  MonteCarloOptions opts;
  opts.trials = 1000;
  const MonteCarloResult r = run_monte_carlo(
      opts, [](std::uint64_t t) { return static_cast<double>(t % 2); });
  EXPECT_EQ(r.summary.count(), 1000u);
  EXPECT_NEAR(r.summary.mean(), 0.5, 1e-12);
  EXPECT_TRUE(r.samples.empty());
}

TEST(MonteCarlo, KeepSamplesStoresRawValues) {
  MonteCarloOptions opts;
  opts.trials = 10;
  opts.keep_samples = true;
  const MonteCarloResult r = run_monte_carlo(
      opts, [](std::uint64_t t) { return static_cast<double>(t); });
  ASSERT_EQ(r.samples.size(), 10u);
  EXPECT_DOUBLE_EQ(r.samples[7], 7.0);
}

TEST(MonteCarlo, StandardErrorShrinksWithTrials) {
  auto noisy = [](std::uint64_t t) {
    return static_cast<double>((t * 2654435761u) % 1000) / 1000.0;
  };
  MonteCarloOptions small_opts;
  small_opts.trials = 100;
  MonteCarloOptions big_opts;
  big_opts.trials = 10000;
  const double se_small = run_monte_carlo(small_opts, noisy).standard_error();
  const double se_big = run_monte_carlo(big_opts, noisy).standard_error();
  EXPECT_LT(se_big, se_small);
}

TEST(MonteCarlo, ZeroTrialsRejected) {
  MonteCarloOptions opts;
  opts.trials = 0;
  EXPECT_THROW(run_monte_carlo(opts, [](std::uint64_t) { return 0.0; }),
               util::InvalidArgument);
}

}  // namespace
}  // namespace privlocad::stats
