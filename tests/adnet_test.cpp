// Tests for the ad-network simulator: campaign presets, matching
// semantics, auction ordering, and the bid log.
#include <gtest/gtest.h>

#include <algorithm>

#include "adnet/ad_network.hpp"
#include "adnet/advertiser.hpp"
#include "adnet/bid_log.hpp"
#include "rng/engine.hpp"
#include "util/validation.hpp"

namespace privlocad::adnet {
namespace {

Advertiser make_advertiser(std::uint64_t id, geo::Point where, double radius,
                           double bid = 1.0) {
  Advertiser a;
  a.id = id;
  a.business_location = where;
  a.targeting_radius_m = radius;
  a.category = "test";
  a.bid_cpm = bid;
  return a;
}

// ----------------------------------------------------------------- presets

TEST(Presets, FourPlatformsMatchTable1) {
  const auto& presets = table1_presets();
  ASSERT_EQ(presets.size(), 4u);
  EXPECT_EQ(presets[0].platform, "Google");
  EXPECT_DOUBLE_EQ(presets[0].min_radius_m, 5000.0);
  EXPECT_DOUBLE_EQ(presets[0].max_radius_m, 65000.0);
  EXPECT_EQ(presets[3].platform, "Tencent");
  EXPECT_DOUBLE_EQ(presets[3].min_radius_m, 500.0);
  EXPECT_DOUBLE_EQ(presets[3].max_radius_m, 25000.0);
}

TEST(Presets, ClampRadiusEnforcesPlatformRange) {
  const PlatformPreset& google = table1_presets()[0];
  EXPECT_DOUBLE_EQ(clamp_radius(google, 100.0), 5000.0);
  EXPECT_DOUBLE_EQ(clamp_radius(google, 30000.0), 30000.0);
  EXPECT_DOUBLE_EQ(clamp_radius(google, 1e6), 65000.0);
  EXPECT_THROW(clamp_radius(google, 0.0), util::InvalidArgument);
}

TEST(Presets, GeneratedCampaignsRespectPresetAndCap) {
  rng::Engine e(1);
  const PlatformPreset& tencent = table1_presets()[3];
  const auto campaigns = generate_campaigns(e, tencent, 200, 40000.0, 10000.0);
  ASSERT_EQ(campaigns.size(), 200u);
  for (const Advertiser& a : campaigns) {
    EXPECT_GE(a.targeting_radius_m, tencent.min_radius_m);
    EXPECT_LE(a.targeting_radius_m, 10000.0);
    EXPECT_LE(std::abs(a.business_location.x), 40000.0);
    EXPECT_LE(std::abs(a.business_location.y), 40000.0);
    EXPECT_FALSE(a.category.empty());
    EXPECT_GT(a.bid_cpm, 0.0);
  }
}

// ---------------------------------------------------------------- matching

TEST(AdNetwork, MatchesOnlyCoveringCampaigns) {
  AdNetwork network({make_advertiser(1, {0, 0}, 1000.0),
                     make_advertiser(2, {5000, 0}, 1000.0),
                     make_advertiser(3, {200, 0}, 5000.0)});
  const auto ads = network.match({100, 0});
  ASSERT_EQ(ads.size(), 2u);  // advertisers 1 and 3 cover (100, 0)
  EXPECT_TRUE((ads[0].advertiser_id == 1 && ads[1].advertiser_id == 3) ||
              (ads[0].advertiser_id == 3 && ads[1].advertiser_id == 1));
}

TEST(AdNetwork, BoundaryDistanceCounts) {
  AdNetwork network({make_advertiser(1, {0, 0}, 1000.0)});
  EXPECT_EQ(network.match({1000, 0}).size(), 1u);   // exactly on the rim
  EXPECT_EQ(network.match({1000.1, 0}).size(), 0u);
}

TEST(AdNetwork, HighestBidsWinWhenCapped) {
  std::vector<Advertiser> advertisers;
  for (std::uint64_t i = 0; i < 20; ++i) {
    advertisers.push_back(
        make_advertiser(i, {0, 0}, 10000.0, static_cast<double>(i)));
  }
  AdNetwork network(std::move(advertisers), 5);
  const auto ads = network.match({0, 0});
  ASSERT_EQ(ads.size(), 5u);
  for (std::size_t i = 0; i < ads.size(); ++i) {
    EXPECT_DOUBLE_EQ(ads[i].bid_cpm, static_cast<double>(19 - i));
  }
}

TEST(AdNetwork, TieBreaksById) {
  AdNetwork network({make_advertiser(7, {0, 0}, 1000.0, 2.0),
                     make_advertiser(3, {0, 0}, 1000.0, 2.0)});
  const auto ads = network.match({0, 0});
  ASSERT_EQ(ads.size(), 2u);
  EXPECT_EQ(ads[0].advertiser_id, 3u);
}

TEST(AdNetwork, RejectsBadConstruction) {
  EXPECT_THROW(AdNetwork({make_advertiser(1, {0, 0}, -5.0)}),
               util::InvalidArgument);
  EXPECT_THROW(AdNetwork({}, 0), util::InvalidArgument);
}

TEST(AdNetwork, IndexedMatchingAgreesWithBruteForce) {
  // The spatial index must be a pure optimization: identical results to a
  // direct scan over every advertiser, across a random workload.
  rng::Engine e(9);
  const auto campaigns =
      generate_campaigns(e, table1_presets()[3], 500, 40000.0, 25000.0);
  AdNetwork network(campaigns, /*max_ads_per_request=*/1000);

  for (int trial = 0; trial < 50; ++trial) {
    const geo::Point where{e.uniform_in(-50000, 50000),
                           e.uniform_in(-50000, 50000)};
    const auto indexed = network.match(where);

    std::vector<std::uint64_t> brute;
    for (const Advertiser& a : campaigns) {
      if (geo::distance(a.business_location, where) <=
          a.targeting_radius_m) {
        brute.push_back(a.id);
      }
    }
    ASSERT_EQ(indexed.size(), brute.size()) << "trial " << trial;
    std::vector<std::uint64_t> indexed_ids;
    for (const Ad& ad : indexed) indexed_ids.push_back(ad.advertiser_id);
    std::sort(indexed_ids.begin(), indexed_ids.end());
    std::sort(brute.begin(), brute.end());
    EXPECT_EQ(indexed_ids, brute);
  }
}

// ----------------------------------------------------------------- bid log

TEST(BidLog, RecordsPerUserInOrder) {
  BidLog log;
  log.record(1, {0, 0}, 100);
  log.record(2, {5, 5}, 150);
  log.record(1, {1, 1}, 200);

  EXPECT_EQ(log.total_requests(), 3u);
  EXPECT_EQ(log.user_count(), 2u);
  const auto& user1 = log.requests_for(1);
  ASSERT_EQ(user1.size(), 2u);
  EXPECT_EQ(user1[0].time, 100);
  EXPECT_EQ(user1[1].time, 200);
  EXPECT_TRUE(log.requests_for(99).empty());
}

TEST(BidLog, PositionsMatchRequests) {
  BidLog log;
  log.record(1, {3, 4}, 0);
  log.record(1, {5, 6}, 1);
  const auto positions = log.positions_for(1);
  ASSERT_EQ(positions.size(), 2u);
  EXPECT_EQ(positions[1], (geo::Point{5, 6}));
  EXPECT_TRUE(log.positions_for(42).empty());
}

// ------------------------------------------- category & frequency capping

TEST(AdNetwork, CategoryFilterRestrictsMatches) {
  Advertiser food = make_advertiser(1, {0, 0}, 5000.0);
  food.category = "restaurant";
  Advertiser gym = make_advertiser(2, {0, 0}, 5000.0);
  gym.category = "fitness";
  AdNetwork network({food, gym});

  EXPECT_EQ(network.match({0, 0}).size(), 2u);  // empty = any category
  const auto only_food = network.match({0, 0}, "restaurant");
  ASSERT_EQ(only_food.size(), 1u);
  EXPECT_EQ(only_food[0].advertiser_id, 1u);
  EXPECT_TRUE(network.match({0, 0}, "entertainment").empty());
}

TEST(AdNetwork, FrequencyCapLimitsDailyImpressions) {
  AdNetwork network({make_advertiser(1, {0, 0}, 5000.0)}, 10,
                    FrequencyCap{2});
  const std::int64_t t0 = 1000;
  EXPECT_EQ(network.handle_request({5, {0, 0}, t0, {}}).size(), 1u);
  EXPECT_EQ(network.handle_request({5, {0, 0}, t0 + 1, {}}).size(), 1u);
  // Third request the same day: capped out.
  EXPECT_EQ(network.handle_request({5, {0, 0}, t0 + 2, {}}).size(), 0u);
  EXPECT_EQ(network.impressions(5, 1, t0), 2u);
}

TEST(AdNetwork, FrequencyCapResetsNextDay) {
  AdNetwork network({make_advertiser(1, {0, 0}, 5000.0)}, 10,
                    FrequencyCap{1});
  const std::int64_t day0 = 1000;
  const std::int64_t day1 = day0 + 86400;
  EXPECT_EQ(network.handle_request({5, {0, 0}, day0, {}}).size(), 1u);
  EXPECT_EQ(network.handle_request({5, {0, 0}, day0 + 10, {}}).size(), 0u);
  EXPECT_EQ(network.handle_request({5, {0, 0}, day1, {}}).size(), 1u);
  EXPECT_EQ(network.impressions(5, 1, day1), 1u);
}

TEST(AdNetwork, FrequencyCapIsPerUserPerAdvertiser) {
  AdNetwork network({make_advertiser(1, {0, 0}, 5000.0),
                     make_advertiser(2, {0, 0}, 5000.0)},
                    10, FrequencyCap{1});
  EXPECT_EQ(network.handle_request({5, {0, 0}, 0, {}}).size(), 2u);
  // User 5 is capped on both advertisers; user 6 is fresh.
  EXPECT_EQ(network.handle_request({5, {0, 0}, 1, {}}).size(), 0u);
  EXPECT_EQ(network.handle_request({6, {0, 0}, 2, {}}).size(), 2u);
}

TEST(AdNetwork, ZeroCapMeansUnlimited) {
  AdNetwork network({make_advertiser(1, {0, 0}, 5000.0)});
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(network.handle_request({5, {0, 0}, i, {}}).size(), 1u);
  }
  // Without capping no impressions are recorded (nothing to enforce).
  EXPECT_EQ(network.impressions(5, 1, 0), 0u);
}

TEST(AdNetwork, HandleRequestLogsTheReportedLocation) {
  AdNetwork network({make_advertiser(1, {0, 0}, 1000.0)});
  network.handle_request({77, {250, 0}, 12345, {}});
  network.handle_request({77, {260, 0}, 12346, {}});
  EXPECT_EQ(network.bid_log().user_count(), 1u);
  const auto positions = network.bid_log().positions_for(77);
  ASSERT_EQ(positions.size(), 2u);
  EXPECT_EQ(positions[0], (geo::Point{250, 0}));
}

}  // namespace
}  // namespace privlocad::adnet
