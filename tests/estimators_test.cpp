// Tests for the Weiszfeld geometric median and its integration into the
// attack as the Laplace-MLE estimator.
#include <gtest/gtest.h>

#include <cmath>

#include "attack/deobfuscation.hpp"
#include "attack/estimators.hpp"
#include "lppm/planar_laplace.hpp"
#include "rng/engine.hpp"
#include "rng/samplers.hpp"
#include "stats/running_stats.hpp"
#include "util/validation.hpp"

namespace privlocad::attack {
namespace {

TEST(GeometricMedian, TrivialCases) {
  EXPECT_EQ(geometric_median({{3, 4}}), (geo::Point{3, 4}));
  const geo::Point mid = geometric_median({{0, 0}, {10, 0}});
  EXPECT_DOUBLE_EQ(mid.x, 5.0);
  EXPECT_DOUBLE_EQ(mid.y, 0.0);
  EXPECT_THROW(geometric_median({}), util::InvalidArgument);
}

TEST(GeometricMedian, EquilateralTriangleCenterIsFermatPoint) {
  // For an equilateral triangle the geometric median is the centroid.
  const double h = std::sqrt(3.0) / 2.0;
  const std::vector<geo::Point> tri{{0, 0}, {1, 0}, {0.5, h}};
  const geo::Point median = geometric_median(tri);
  const geo::Point centroid = geo::centroid(tri);
  EXPECT_NEAR(geo::distance(median, centroid), 0.0, 1e-6);
}

TEST(GeometricMedian, CollinearPointsGiveMiddlePoint) {
  // Odd count on a line: the median is the middle point exactly.
  const std::vector<geo::Point> line{{0, 0}, {1, 0}, {2, 0}, {3, 0}, {10, 0}};
  const geo::Point median = geometric_median(line);
  EXPECT_NEAR(median.x, 2.0, 1e-6);
  EXPECT_NEAR(median.y, 0.0, 1e-6);
}

TEST(GeometricMedian, RobustToGrossOutlier) {
  // One far outlier drags the centroid strongly but the median barely.
  std::vector<geo::Point> points;
  rng::Engine e(1);
  for (int i = 0; i < 50; ++i) {
    points.push_back(geo::Point{0, 0} + rng::gaussian_noise(e, 10.0));
  }
  points.push_back({100000.0, 0.0});

  const geo::Point centroid = geo::centroid(points);
  const geo::Point median = geometric_median(points);
  EXPECT_GT(centroid.x, 1500.0);   // dragged ~2 km
  EXPECT_LT(median.x, 50.0);       // barely moved
}

TEST(GeometricMedian, HandlesIterateOnDataPoint) {
  // Symmetric cross: the centroid (= a data point here) IS the median;
  // the Vardi-Zhang guard must terminate cleanly.
  const std::vector<geo::Point> cross{
      {0, 0}, {1, 0}, {-1, 0}, {0, 1}, {0, -1}};
  const geo::Point median = geometric_median(cross);
  EXPECT_NEAR(geo::distance(median, {0, 0}), 0.0, 1e-9);
}

TEST(GeometricMedian, MinimizesSumOfDistances) {
  // Property: the returned point beats random perturbations of itself.
  rng::Engine e(2);
  std::vector<geo::Point> points;
  for (int i = 0; i < 40; ++i) {
    points.push_back(
        {e.uniform_in(-100, 100), e.uniform_in(-100, 100)});
  }
  const geo::Point median = geometric_median(points);
  auto objective = [&](geo::Point p) {
    double sum = 0.0;
    for (const geo::Point& q : points) sum += geo::distance(p, q);
    return sum;
  };
  const double at_median = objective(median);
  for (int trial = 0; trial < 30; ++trial) {
    const geo::Point perturbed =
        median + geo::Point{e.uniform_in(-5, 5), e.uniform_in(-5, 5)};
    EXPECT_GE(objective(perturbed), at_median - 1e-6);
  }
}

TEST(Estimators, DispatchMatchesDirectCalls) {
  const std::vector<geo::Point> points{{0, 0}, {4, 0}, {0, 4}};
  EXPECT_EQ(estimate_location(points, LocationEstimator::kCentroid),
            geo::centroid(points));
  EXPECT_NEAR(
      geo::distance(
          estimate_location(points, LocationEstimator::kGeometricMedian),
          geometric_median(points)),
      0.0, 1e-12);
  EXPECT_THROW(estimate_location({}, LocationEstimator::kCentroid),
               util::InvalidArgument);
}

TEST(Estimators, MedianBeatsCentroidUnderLaplaceNoise) {
  // The MLE argument made empirical: across many users, the geometric
  // median's recovery error under planar Laplace noise is at most the
  // centroid's (averaged).
  const lppm::PlanarLaplaceMechanism mech({std::log(4.0), 200.0});
  DeobfuscationConfig centroid_cfg;
  centroid_cfg.trim_radius_m = mech.tail_radius(0.05);
  centroid_cfg.connectivity_threshold_m = centroid_cfg.trim_radius_m / 4.0;
  DeobfuscationConfig median_cfg = centroid_cfg;
  median_cfg.estimator = LocationEstimator::kGeometricMedian;

  stats::RunningStats centroid_err, median_err;
  for (int user = 0; user < 40; ++user) {
    rng::Engine e(rng::Engine(50).split(user));
    std::vector<geo::Point> observed;
    for (int i = 0; i < 150; ++i) {
      observed.push_back(mech.obfuscate_one(e, {0, 0}));
    }
    centroid_err.add(geo::norm(
        deobfuscate_top_locations(observed, centroid_cfg).at(0).location));
    median_err.add(geo::norm(
        deobfuscate_top_locations(observed, median_cfg).at(0).location));
  }
  EXPECT_LE(median_err.mean(), centroid_err.mean() * 1.05);
}

}  // namespace
}  // namespace privlocad::attack
