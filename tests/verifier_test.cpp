// Tests for the empirical geo-IND verifier: every mechanism in the library
// must pass at its advertised parameters, and deliberately broken
// mechanisms must be refuted (the negative controls that prove the tester
// has teeth).
#include <gtest/gtest.h>

#include <cmath>

#include "lppm/baselines.hpp"
#include "lppm/gaussian.hpp"
#include "lppm/planar_laplace.hpp"
#include "lppm/verifier.hpp"
#include "rng/samplers.hpp"
#include "rng/engine.hpp"
#include "util/validation.hpp"

namespace privlocad::lppm {
namespace {

BoundedGeoIndParams paper_params(std::size_t n) {
  BoundedGeoIndParams p;
  p.radius_m = 500.0;
  p.epsilon = 1.0;
  p.delta = 0.01;
  p.n = n;
  return p;
}

/// Negative control: "Gaussian" with half the calibrated noise.
class UnderNoisedMechanism final : public Mechanism {
 public:
  explicit UnderNoisedMechanism(BoundedGeoIndParams params)
      : sigma_(n_fold_sigma(params) * 0.25) {}
  std::vector<geo::Point> obfuscate(rng::Engine& engine,
                                    geo::Point real) const override {
    return {real + rng::gaussian_noise(engine, sigma_)};
  }
  std::size_t output_count() const override { return 1; }
  std::string name() const override { return "under-noised"; }
  double tail_radius(double) const override { return sigma_; }

 private:
  double sigma_;
};

/// Negative control: releases the true location shifted by a constant --
/// no randomness at all.
class LeakyMechanism final : public Mechanism {
 public:
  std::vector<geo::Point> obfuscate(rng::Engine&,
                                    geo::Point real) const override {
    return {real + geo::Point{10.0, 0.0}};
  }
  std::size_t output_count() const override { return 1; }
  std::string name() const override { return "leaky"; }
  double tail_radius(double) const override { return 10.0; }
};

/// Degenerate: a constant output regardless of input (perfectly private,
/// perfectly useless, and un-binnable).
class ConstantMechanism final : public Mechanism {
 public:
  std::vector<geo::Point> obfuscate(rng::Engine&,
                                    geo::Point) const override {
    return {geo::Point{0.0, 0.0}};
  }
  std::size_t output_count() const override { return 1; }
  std::string name() const override { return "constant"; }
  double tail_radius(double) const override { return 0.0; }
};

TEST(Verifier, OneFoldGaussianAtCalibratedSigmaPasses) {
  const NFoldGaussianMechanism mech(paper_params(1));
  rng::Engine e(1);
  VerifierConfig config;
  config.radius_m = 500.0;
  config.epsilon = 1.0;
  config.delta = 0.01;
  const VerifierReport report = verify_geo_ind(e, mech, {0, 0}, config);
  EXPECT_TRUE(report.consistent) << "excess " << report.worst_excess;
  EXPECT_GT(report.sets_tested, 100u);
}

TEST(Verifier, NFoldFirstOutputPasses) {
  // Each single output of the 10-fold mechanism is even quieter than the
  // claim requires (sigma is sqrt(10)x the 1-fold), so its per-release
  // marginal passes easily.
  const NFoldGaussianMechanism mech(paper_params(10));
  rng::Engine e(2);
  VerifierConfig config;
  config.radius_m = 500.0;
  config.epsilon = 1.0;
  config.delta = 0.01;
  EXPECT_TRUE(verify_geo_ind(e, mech, {0, 0}, config).consistent);
}

TEST(Verifier, PlanarLaplaceAtItsLevelPasses) {
  // l = ln4 at r = 200 m: per-release (ln4)-geo-IND at distance 200 m.
  const PlanarLaplaceMechanism mech({std::log(4.0), 200.0});
  rng::Engine e(3);
  VerifierConfig config;
  config.radius_m = 200.0;
  config.epsilon = std::log(4.0);
  config.delta = 0.0;
  EXPECT_TRUE(verify_geo_ind(e, mech, {0, 0}, config).consistent);
}

TEST(Verifier, RefutesUnderNoisedMechanism) {
  const UnderNoisedMechanism broken(paper_params(1));
  rng::Engine e(4);
  VerifierConfig config;
  config.radius_m = 500.0;
  config.epsilon = 1.0;
  config.delta = 0.01;
  const VerifierReport report = verify_geo_ind(e, broken, {0, 0}, config);
  EXPECT_FALSE(report.consistent);
  EXPECT_GT(report.worst_excess, 0.05);
}

TEST(Verifier, RefutesDeterministicLeak) {
  const LeakyMechanism leaky;
  rng::Engine e(5);
  VerifierConfig config;
  config.radius_m = 500.0;
  config.epsilon = 1.0;
  config.delta = 0.01;
  EXPECT_FALSE(verify_geo_ind(e, leaky, {0, 0}, config).consistent);
}

TEST(Verifier, OverClaimedEpsilonIsRefuted) {
  // The calibrated 1-fold Gaussian at eps = 1 cannot also satisfy a much
  // stronger claim (eps = 0.2 at the same delta).
  const NFoldGaussianMechanism mech(paper_params(1));
  rng::Engine e(6);
  VerifierConfig config;
  config.radius_m = 500.0;
  config.epsilon = 0.2;
  config.delta = 0.001;
  config.estimation_slack = 0.01;
  EXPECT_FALSE(verify_geo_ind(e, mech, {0, 0}, config).consistent);
}

TEST(Verifier, DomainErrors) {
  const NFoldGaussianMechanism mech(paper_params(1));
  rng::Engine e(7);
  VerifierConfig bad;
  bad.samples = 10;
  EXPECT_THROW(verify_geo_ind(e, mech, {0, 0}, bad), util::InvalidArgument);
  bad = VerifierConfig{};
  bad.bins = 1;
  EXPECT_THROW(verify_geo_ind(e, mech, {0, 0}, bad), util::InvalidArgument);
  // Constant outputs cannot be binned: zero-width range is rejected.
  EXPECT_THROW(
      verify_geo_ind(e, ConstantMechanism{}, {0, 0}, VerifierConfig{}),
      util::InvalidArgument);
}

}  // namespace
}  // namespace privlocad::lppm
