// Tests for profile persistence and the restored-device serving path.
#include <gtest/gtest.h>

#include <sstream>

#include "core/edge_device.hpp"
#include "core/profile_store.hpp"
#include "util/validation.hpp"

namespace privlocad::core {
namespace {

EdgeConfig fast_config() {
  EdgeConfig c;
  c.top_params.radius_m = 500.0;
  c.top_params.epsilon = 1.0;
  c.top_params.delta = 0.01;
  c.top_params.n = 10;
  c.management.window_seconds = 1000;
  return c;
}

ProfileSnapshot sample_snapshot() {
  ProfileSnapshot snapshot;
  StoredProfile alice;
  alice.profile = attack::LocationProfile(
      {{{0, 0}, 50}, {{8000, 0}, 20}, {{3000, 3000}, 3}});
  alice.top_indices = {0, 1};
  snapshot.emplace(1, std::move(alice));
  StoredProfile bob;
  bob.profile = attack::LocationProfile({{{-500, 900}, 7}});
  bob.top_indices = {0};
  snapshot.emplace(2, std::move(bob));
  return snapshot;
}

TEST(ProfileStore, RoundTripPreservesEverything) {
  const ProfileSnapshot original = sample_snapshot();
  std::ostringstream out;
  save_profiles(out, original);
  std::istringstream in(out.str());
  const ProfileSnapshot loaded = load_profiles(in);

  ASSERT_EQ(loaded.size(), original.size());
  for (const auto& [user, stored] : original) {
    const auto it = loaded.find(user);
    ASSERT_NE(it, loaded.end());
    ASSERT_EQ(it->second.profile.size(), stored.profile.size());
    for (std::size_t i = 0; i < stored.profile.size(); ++i) {
      EXPECT_EQ(it->second.profile.top(i).frequency,
                stored.profile.top(i).frequency);
      EXPECT_NEAR(geo::distance(it->second.profile.top(i).location,
                                stored.profile.top(i).location),
                  0.0, 1e-5);
    }
    EXPECT_EQ(it->second.top_indices, stored.top_indices);
  }
}

TEST(ProfileStore, EmptySnapshotRoundTrips) {
  std::ostringstream out;
  save_profiles(out, {});
  std::istringstream in(out.str());
  EXPECT_TRUE(load_profiles(in).empty());
}

TEST(ProfileStore, RejectsCorruptInput) {
  {
    std::istringstream in("a,b\n1,2\n");
    EXPECT_THROW(load_profiles(in), util::InvalidArgument);
  }
  {
    std::istringstream in(
        "user_id,entry_index,x,y,frequency,is_top\n1,1,0,0,5,0\n");
    EXPECT_THROW(load_profiles(in), util::InvalidArgument);  // gap at 0
  }
  {
    std::istringstream in(
        "user_id,entry_index,x,y,frequency,is_top\n1,0,0,0,0,0\n");
    EXPECT_THROW(load_profiles(in), util::InvalidArgument);  // zero freq
  }
  {
    std::istringstream in(
        "user_id,entry_index,x,y,frequency,is_top\n1,0,0,0,5,7\n");
    EXPECT_THROW(load_profiles(in), util::InvalidArgument);  // bad is_top
  }
}

TEST(ProfileStore, MissingFilesThrow) {
  EXPECT_THROW(load_profiles_file("/nonexistent/p.csv"),
               std::runtime_error);
}

TEST(ProfileStore, RestoredDeviceServesTopLocationsImmediately) {
  const geo::Point home{0.0, 0.0};
  trace::UserTrace history;
  history.user_id = 1;
  for (int i = 0; i < 50; ++i) history.check_ins.push_back({home, i});

  // Device A builds state, persists BOTH tables and profiles.
  EdgeDevice device_a(fast_config().with_seed(42));
  device_a.import_history(1, history);
  device_a.prepare_obfuscation(1);
  std::stringstream tables, profiles;
  save_tables(tables, device_a.snapshot_tables());
  save_profiles(profiles, device_a.snapshot_profiles());

  // Device B restores: the FIRST request after restart must already be a
  // top-location report from the frozen set -- no warm-up window.
  EdgeDevice device_b(fast_config().with_seed(777));
  device_b.restore_tables(load_tables(tables, 100.0));
  device_b.restore_profiles(load_profiles(profiles));
  const ReportedLocation r = device_b.report_location(1, home, 99999);
  EXPECT_EQ(r.kind, ReportKind::kTopLocation);
}

TEST(ProfileStore, RestoreOverLiveProfileRejected) {
  EdgeDevice device(fast_config().with_seed(42));
  const geo::Point home{0.0, 0.0};
  trace::UserTrace history;
  history.user_id = 1;
  for (int i = 0; i < 50; ++i) history.check_ins.push_back({home, i});
  device.import_history(1, history);

  EXPECT_THROW(device.restore_profiles(sample_snapshot()),
               util::PreconditionViolation);
}

TEST(ProfileStore, SnapshotSkipsUsersWithoutProfiles) {
  EdgeDevice device(fast_config().with_seed(42));
  device.report_location(9, {0, 0}, 0);  // user exists, no rebuild yet
  EXPECT_TRUE(device.snapshot_profiles().empty());
}

TEST(ProfileStore, RestoredTopIndexOutOfRangeRejected) {
  ProfileSnapshot bad;
  StoredProfile stored;
  stored.profile = attack::LocationProfile({{{0, 0}, 5}});
  stored.top_indices = {3};  // past the single entry
  bad.emplace(1, std::move(stored));

  EdgeDevice device(fast_config().with_seed(42));
  EXPECT_THROW(device.restore_profiles(bad), util::InvalidArgument);
}

}  // namespace
}  // namespace privlocad::core
